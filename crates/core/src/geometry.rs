//! Planar integer geometry used throughout the ParchMint data model.
//!
//! All coordinates are expressed in integer micrometres (µm), matching the
//! unit convention of the ParchMint interchange format. Integer coordinates
//! keep serialization lossless and make geometric predicates exact.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// A point in the device plane, in micrometres.
///
/// # Examples
///
/// ```
/// use parchmint::geometry::Point;
///
/// let a = Point::new(100, 200);
/// let b = Point::new(130, 160);
/// assert_eq!(a.manhattan_distance(b), 70);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Point {
    /// Horizontal coordinate in µm.
    pub x: i64,
    /// Vertical coordinate in µm.
    pub y: i64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Creates a point from its coordinates.
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// L1 (taxicab) distance to `other`.
    ///
    /// Channel routing on microfluidic chips is rectilinear, so Manhattan
    /// distance is the natural wirelength metric.
    pub fn manhattan_distance(self, other: Point) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Squared Euclidean distance to `other`, exact in integers.
    pub fn distance_squared(self, other: Point) -> i64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other` as a float.
    pub fn distance(self, other: Point) -> f64 {
        (self.distance_squared(other) as f64).sqrt()
    }

    /// Component-wise minimum of two points.
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points.
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Translates the point by `(dx, dy)`.
    pub fn translated(self, dx: i64, dy: i64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i64, i64)> for Point {
    fn from((x, y): (i64, i64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (i64, i64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    fn add_assign(&mut self, rhs: Point) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    fn sub_assign(&mut self, rhs: Point) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Neg for Point {
    type Output = Point;
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

/// The rectangular extent of a component or device, in micrometres.
///
/// ParchMint serializes spans as the `x-span` / `y-span` key pair; `Span`
/// groups the pair and guards the "non-negative" invariant at construction.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Span {
    /// Extent along the x axis, in µm.
    #[serde(rename = "x-span")]
    pub x: i64,
    /// Extent along the y axis, in µm.
    #[serde(rename = "y-span")]
    pub y: i64,
}

impl Span {
    /// Creates a span, clamping negative extents to zero.
    pub fn new(x: i64, y: i64) -> Self {
        Span {
            x: x.max(0),
            y: y.max(0),
        }
    }

    /// A square span with side `side`.
    pub fn square(side: i64) -> Self {
        Span::new(side, side)
    }

    /// Area in µm².
    pub fn area(self) -> i64 {
        self.x * self.y
    }

    /// Returns the span rotated a quarter turn (x and y swapped).
    pub fn rotated(self) -> Span {
        Span {
            x: self.y,
            y: self.x,
        }
    }

    /// True when either extent is zero.
    pub fn is_empty(self) -> bool {
        self.x == 0 || self.y == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}×{}", self.x, self.y)
    }
}

impl From<(i64, i64)> for Span {
    fn from((x, y): (i64, i64)) -> Self {
        Span::new(x, y)
    }
}

/// An axis-aligned rectangle, defined by its minimum corner and span.
///
/// # Examples
///
/// ```
/// use parchmint::geometry::{Point, Rect, Span};
///
/// let r = Rect::new(Point::new(0, 0), Span::new(100, 50));
/// assert!(r.contains(Point::new(99, 49)));
/// assert!(!r.contains(Point::new(100, 0))); // max edge is exclusive
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Minimum (lower-left) corner.
    pub min: Point,
    /// Extent of the rectangle.
    pub span: Span,
}

impl Rect {
    /// Creates a rectangle from its minimum corner and span.
    pub const fn new(min: Point, span: Span) -> Self {
        Rect { min, span }
    }

    /// Creates a rectangle from two opposite corners, in any order.
    pub fn from_corners(a: Point, b: Point) -> Self {
        let min = a.min(b);
        let max = a.max(b);
        Rect {
            min,
            span: Span::new(max.x - min.x, max.y - min.y),
        }
    }

    /// The corner opposite [`Rect::min`] (exclusive).
    pub fn max(self) -> Point {
        Point::new(self.min.x + self.span.x, self.min.y + self.span.y)
    }

    /// The centre of the rectangle, rounded toward the minimum corner.
    pub fn center(self) -> Point {
        Point::new(self.min.x + self.span.x / 2, self.min.y + self.span.y / 2)
    }

    /// Area in µm².
    pub fn area(self) -> i64 {
        self.span.area()
    }

    /// True when the half-open rectangle `[min, max)` contains `p`.
    pub fn contains(self, p: Point) -> bool {
        let max = self.max();
        p.x >= self.min.x && p.x < max.x && p.y >= self.min.y && p.y < max.y
    }

    /// True when `other` lies entirely within `self` (closed comparison).
    pub fn contains_rect(self, other: Rect) -> bool {
        let max = self.max();
        let omax = other.max();
        other.min.x >= self.min.x && other.min.y >= self.min.y && omax.x <= max.x && omax.y <= max.y
    }

    /// True when the interiors of the two rectangles overlap.
    pub fn intersects(self, other: Rect) -> bool {
        let a_max = self.max();
        let b_max = other.max();
        self.min.x < b_max.x
            && other.min.x < a_max.x
            && self.min.y < b_max.y
            && other.min.y < a_max.y
    }

    /// Smallest rectangle covering both `self` and `other`.
    pub fn union(self, other: Rect) -> Rect {
        if self.span.is_empty() {
            return other;
        }
        if other.span.is_empty() {
            return self;
        }
        Rect::from_corners(self.min.min(other.min), self.max().max(other.max()))
    }

    /// The overlap of the two rectangles, or `None` when they are disjoint.
    pub fn intersection(self, other: Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        let min = self.min.max(other.min);
        let max = self.max().min(other.max());
        Some(Rect::from_corners(min, max))
    }

    /// The rectangle grown by `margin` on every side (shrunk when negative).
    pub fn inflated(self, margin: i64) -> Rect {
        Rect {
            min: self.min.translated(-margin, -margin),
            span: Span::new(self.span.x + 2 * margin, self.span.y + 2 * margin),
        }
    }

    /// The rectangle translated by `(dx, dy)`.
    pub fn translated(self, dx: i64, dy: i64) -> Rect {
        Rect {
            min: self.min.translated(dx, dy),
            span: self.span,
        }
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}]", self.min, self.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic() {
        let a = Point::new(3, 4);
        let b = Point::new(1, 2);
        assert_eq!(a + b, Point::new(4, 6));
        assert_eq!(a - b, Point::new(2, 2));
        assert_eq!(-a, Point::new(-3, -4));
        let mut c = a;
        c += b;
        assert_eq!(c, Point::new(4, 6));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn point_distances() {
        let a = Point::new(0, 0);
        let b = Point::new(3, 4);
        assert_eq!(a.manhattan_distance(b), 7);
        assert_eq!(a.distance_squared(b), 25);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn point_min_max_translate() {
        let a = Point::new(1, 9);
        let b = Point::new(5, 2);
        assert_eq!(a.min(b), Point::new(1, 2));
        assert_eq!(a.max(b), Point::new(5, 9));
        assert_eq!(a.translated(-1, 1), Point::new(0, 10));
    }

    #[test]
    fn span_clamps_negative() {
        let s = Span::new(-5, 10);
        assert_eq!(s.x, 0);
        assert_eq!(s.y, 10);
        assert!(s.is_empty());
    }

    #[test]
    fn span_area_rotation() {
        let s = Span::new(200, 100);
        assert_eq!(s.area(), 20_000);
        assert_eq!(s.rotated(), Span::new(100, 200));
        assert_eq!(Span::square(50), Span::new(50, 50));
    }

    #[test]
    fn rect_contains_half_open() {
        let r = Rect::new(Point::new(10, 10), Span::new(20, 20));
        assert!(r.contains(Point::new(10, 10)));
        assert!(r.contains(Point::new(29, 29)));
        assert!(!r.contains(Point::new(30, 10)));
        assert!(!r.contains(Point::new(10, 30)));
        assert!(!r.contains(Point::new(9, 15)));
    }

    #[test]
    fn rect_from_corners_any_order() {
        let a = Rect::from_corners(Point::new(5, 7), Point::new(1, 2));
        assert_eq!(a.min, Point::new(1, 2));
        assert_eq!(a.span, Span::new(4, 5));
    }

    #[test]
    fn rect_intersection_union() {
        let a = Rect::new(Point::new(0, 0), Span::new(10, 10));
        let b = Rect::new(Point::new(5, 5), Span::new(10, 10));
        let i = a.intersection(b).unwrap();
        assert_eq!(i, Rect::new(Point::new(5, 5), Span::new(5, 5)));
        let u = a.union(b);
        assert_eq!(u, Rect::new(Point::new(0, 0), Span::new(15, 15)));

        let c = Rect::new(Point::new(100, 100), Span::new(1, 1));
        assert!(a.intersection(c).is_none());
        assert!(!a.intersects(c));
    }

    #[test]
    fn rect_union_with_empty() {
        let empty = Rect::default();
        let a = Rect::new(Point::new(3, 3), Span::new(2, 2));
        assert_eq!(empty.union(a), a);
        assert_eq!(a.union(empty), a);
    }

    #[test]
    fn rect_touching_edges_do_not_intersect() {
        let a = Rect::new(Point::new(0, 0), Span::new(10, 10));
        let b = Rect::new(Point::new(10, 0), Span::new(10, 10));
        assert!(!a.intersects(b));
    }

    #[test]
    fn rect_inflate_contains() {
        let a = Rect::new(Point::new(10, 10), Span::new(10, 10));
        let big = a.inflated(5);
        assert_eq!(big.min, Point::new(5, 5));
        assert_eq!(big.span, Span::new(20, 20));
        assert!(big.contains_rect(a));
        assert!(!a.contains_rect(big));
    }

    #[test]
    fn rect_center() {
        let a = Rect::new(Point::new(0, 0), Span::new(10, 11));
        assert_eq!(a.center(), Point::new(5, 5));
    }

    #[test]
    fn span_serde_kebab_keys() {
        let s = Span::new(750, 1200);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, r#"{"x-span":750,"y-span":1200}"#);
        let back: Span = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
