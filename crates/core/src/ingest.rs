//! Streaming zero-copy device ingest — the hot path behind
//! [`Device::from_json_fast`](crate::Device::from_json_fast).
//!
//! The reference path ([`Device::from_json`](crate::Device::from_json))
//! parses the document into a `serde_json::Value` tree, converts that
//! tree into `serde::Fragment`s, and only then drives the derived
//! deserializers — every key and string is allocated and copied at
//! least twice before the model sees it. At FPVA scale (10k–100k
//! components) that intermediate materialization dominates ingest.
//!
//! This module instead drives the model constructors directly from
//! [`serde_json::EventReader`]'s borrowed pull events: one pass over the
//! input, keys matched as `&str` slices of the document, strings copied
//! exactly once into their final field. Both paths funnel into the same
//! [`finish_device`](crate::device::finish_device) finalization, so
//! valve-map resolution, version inference, and their error messages are
//! shared by construction.
//!
//! ## Equivalence with the `Value` path
//!
//! For every document the `Value` path accepts with well-formed field
//! occurrences, this path produces an identical [`Device`] (pinned by a
//! proptest over generated devices and randomized JSON formatting).
//! Matching behaviors worth calling out:
//!
//! - unknown object keys are skipped, as the derived deserializers do;
//! - duplicate keys keep the last occurrence (the `Value` path collapses
//!   them in its map before deserializing);
//! - integral finite floats coerce into integer fields (`1.0` parses
//!   into an `i64` coordinate), exactly like the vendored serde's
//!   `Fragment::F64` rule;
//! - layer `type` is an exact uppercase match, mirroring the derived
//!   `LayerType` wire enum rather than the lenient `FromStr`;
//! - a feature object's variant-specific fields are buffered untyped
//!   until the `type` tag is known, so fields the chosen variant ignores
//!   are never type-checked — again matching the derived tagged enum.
//!
//! The one intentional divergence: when a key occurs twice and only the
//! *earlier* occurrence is malformed, the `Value` path masks it (last
//! occurrence wins before any typing happens) while this single-pass
//! reader reports the error it streams past first. Rejected documents
//! may therefore differ in *which* error is reported, never in whether
//! an accepted document's parse differs.

use crate::component::{Component, Port};
use crate::connection::{Connection, Target};
use crate::device::{finish_device, Device, RawDevice};
use crate::entity::Entity;
use crate::error::{Error, Result};
use crate::feature::{ComponentFeature, ConnectionFeature, Feature};
use crate::geometry::{Point, Span};
use crate::layer::{Layer, LayerType};
use crate::params::Params;
use crate::version::Version;
use serde_json::{Event, EventReader, Number, Value};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;

/// Parses a full device document; the engine behind
/// [`Device::from_json_fast`](crate::Device::from_json_fast).
pub(crate) fn device_from_str(json: &str) -> Result<Device> {
    let mut ingest = Ingest {
        reader: EventReader::new(json),
    };
    let device = ingest.read_device()?;
    // One trailing call arms the reader's trailing-content check, so
    // `{"name":"d"} junk` fails here exactly like the tree parser.
    match ingest.reader.next_event() {
        Ok(None) => Ok(device),
        Ok(Some(_)) => Err(data_error("trailing characters")),
        Err(e) => Err(e.into()),
    }
}

/// A data (non-syntax) error, reported through the same
/// [`enum@Error`] variant the `Value` path uses for shape mismatches.
fn data_error(message: impl fmt::Display) -> Error {
    <serde_json::Error as serde::de::Error>::custom(message).into()
}

fn missing(field: &str, object: &str) -> Error {
    data_error(format!("missing field `{field}` in `{object}`"))
}

fn required<T>(slot: Option<T>, field: &str, object: &str) -> Result<T> {
    slot.ok_or_else(|| missing(field, object))
}

/// The vendored serde's integer rule: any in-range integer repr, or a
/// finite float with no fractional part (saturating on overflow, like
/// `Fragment::F64(v) => v as i64`).
fn number_to_i64(number: &Number, what: &str) -> Result<i64> {
    if let Some(i) = number.as_i64() {
        return Ok(i);
    }
    if number.is_f64() {
        let f = number.as_f64().expect("f64 repr");
        if f.is_finite() && f.fract() == 0.0 {
            return Ok(f as i64);
        }
        return Err(data_error(format!(
            "{what}: invalid type: expected an integer, found a floating-point number"
        )));
    }
    Err(data_error(format!("{what}: integer out of range for i64")))
}

/// Converts an already-buffered [`Value`] with the same integer rule.
fn value_to_i64(value: &Value, what: &str) -> Result<i64> {
    match value {
        Value::Number(n) => number_to_i64(n, what),
        other => Err(type_mismatch(what, "an integer", other)),
    }
}

fn value_to_string(value: Value, what: &str) -> Result<String> {
    match value {
        Value::String(s) => Ok(s),
        other => Err(type_mismatch(what, "a string", &other)),
    }
}

fn value_to_point(value: &Value, what: &str) -> Result<Point> {
    let Value::Object(map) = value else {
        return Err(type_mismatch(what, "a map", value));
    };
    let x = map
        .get("x")
        .ok_or_else(|| missing("x", what))
        .and_then(|v| value_to_i64(v, what))?;
    let y = map
        .get("y")
        .ok_or_else(|| missing("y", what))
        .and_then(|v| value_to_i64(v, what))?;
    Ok(Point { x, y })
}

fn value_to_points(value: &Value, what: &str) -> Result<Vec<Point>> {
    let Value::Array(items) = value else {
        return Err(type_mismatch(what, "a sequence", value));
    };
    items.iter().map(|v| value_to_point(v, what)).collect()
}

fn type_mismatch(what: &str, expected: &str, found: &Value) -> Error {
    let kind = match found {
        Value::Null => "null",
        Value::Bool(_) => "a boolean",
        Value::Number(n) if n.is_f64() => "a floating-point number",
        Value::Number(_) => "an integer",
        Value::String(_) => "a string",
        Value::Array(_) => "a sequence",
        Value::Object(_) => "a map",
    };
    data_error(format!(
        "{what}: invalid type: expected {expected}, found {kind}"
    ))
}

/// The streaming parser. Object-body readers follow one convention:
/// they are entered with the opening `{` already consumed and they
/// consume through the matching `}`.
struct Ingest<'a> {
    reader: EventReader<'a>,
}

impl<'a> Ingest<'a> {
    /// The next event; EOF here is always premature.
    fn next(&mut self) -> Result<Event<'a>> {
        self.reader
            .next_event()?
            .ok_or_else(|| data_error("unexpected end of document"))
    }

    /// Consumes the opening `{` of `what`.
    fn enter_object(&mut self, what: &str) -> Result<()> {
        match self.next()? {
            Event::StartObject => Ok(()),
            other => Err(event_mismatch(what, "a map", &other)),
        }
    }

    /// The next key in the current object, or `None` at its `}`.
    fn next_key(&mut self) -> Result<Option<Cow<'a, str>>> {
        match self.next()? {
            Event::Key(key) => Ok(Some(key)),
            Event::EndObject => Ok(None),
            // The reader's own state machine makes anything else
            // impossible inside an object body.
            other => Err(event_mismatch("object", "a key", &other)),
        }
    }

    fn skip(&mut self) -> Result<()> {
        Ok(self.reader.skip_value()?)
    }

    fn read_string(&mut self, what: &str) -> Result<String> {
        match self.next()? {
            Event::String(s) => Ok(s.into_owned()),
            other => Err(event_mismatch(what, "a string", &other)),
        }
    }

    /// A string or `null` (for optional fields like a target's port).
    fn read_opt_string(&mut self, what: &str) -> Result<Option<String>> {
        match self.next()? {
            Event::Null => Ok(None),
            Event::String(s) => Ok(Some(s.into_owned())),
            other => Err(event_mismatch(what, "a string", &other)),
        }
    }

    fn read_i64(&mut self, what: &str) -> Result<i64> {
        match self.next()? {
            Event::Number(n) => number_to_i64(&n, what),
            other => Err(event_mismatch(what, "an integer", &other)),
        }
    }

    /// `[ "id", ... ]` into id newtypes.
    fn read_id_array<T: From<String>>(&mut self, what: &str) -> Result<Vec<T>> {
        match self.next()? {
            Event::StartArray => {}
            other => return Err(event_mismatch(what, "a sequence", &other)),
        }
        let mut out = Vec::new();
        loop {
            match self.next()? {
                Event::EndArray => return Ok(out),
                Event::String(s) => out.push(T::from(s.into_owned())),
                other => return Err(event_mismatch(what, "a string", &other)),
            }
        }
    }

    /// An array of objects, with `body` parsing each element from
    /// inside its braces.
    fn read_object_array<T>(
        &mut self,
        what: &str,
        mut body: impl FnMut(&mut Self) -> Result<T>,
    ) -> Result<Vec<T>> {
        match self.next()? {
            Event::StartArray => {}
            other => return Err(event_mismatch(what, "a sequence", &other)),
        }
        let mut out = Vec::new();
        loop {
            match self.next()? {
                Event::EndArray => return Ok(out),
                Event::StartObject => out.push(body(self)?),
                other => return Err(event_mismatch(what, "a map", &other)),
            }
        }
    }

    /// An open `{String: String}` map (valveMap / valveTypeMap);
    /// duplicate keys keep the last occurrence, like the tree path's
    /// key-sorted map.
    fn read_string_map(&mut self, what: &str) -> Result<BTreeMap<String, String>> {
        self.enter_object(what)?;
        let mut out = BTreeMap::new();
        while let Some(key) = self.next_key()? {
            let value = self.read_string(what)?;
            out.insert(key.into_owned(), value);
        }
        Ok(out)
    }

    /// An open parameter bag: values land as owned [`Value`]s, exactly
    /// as the reference path stores them.
    fn read_params(&mut self, what: &str) -> Result<Params> {
        self.enter_object(what)?;
        let mut params = Params::new();
        while let Some(key) = self.next_key()? {
            let value = self.reader.read_value()?;
            params.set(key.into_owned(), value);
        }
        Ok(params)
    }

    // ---- model objects ----------------------------------------------------

    fn read_device(&mut self) -> Result<Device> {
        self.enter_object("device")?;
        let mut name = None;
        let mut version: Option<Version> = None;
        let mut layers = Vec::new();
        let mut components = Vec::new();
        let mut connections = Vec::new();
        let mut features = Vec::new();
        let mut valve_map = BTreeMap::new();
        let mut valve_type_map = BTreeMap::new();
        let mut params = Params::new();
        while let Some(key) = self.next_key()? {
            match key.as_ref() {
                "name" => name = Some(self.read_string("device name")?),
                "version" => {
                    version = match self.read_opt_string("device version")? {
                        Some(s) => Some(
                            s.parse::<Version>()
                                .map_err(|e| data_error(format!("device version: {e}")))?,
                        ),
                        None => None,
                    }
                }
                "layers" => layers = self.read_object_array("layers", Self::read_layer_body)?,
                "components" => {
                    components = self.read_object_array("components", Self::read_component_body)?
                }
                "connections" => {
                    connections =
                        self.read_object_array("connections", Self::read_connection_body)?
                }
                "features" => {
                    features = self.read_object_array("features", Self::read_feature_body)?
                }
                "valveMap" => valve_map = self.read_string_map("valveMap")?,
                "valveTypeMap" => valve_type_map = self.read_string_map("valveTypeMap")?,
                "params" => params = self.read_params("device params")?,
                _ => self.skip()?,
            }
        }
        finish_device(RawDevice {
            name: required(name, "name", "device")?,
            version,
            layers,
            components,
            connections,
            features,
            valve_map,
            valve_type_map,
            params,
        })
    }

    fn read_layer_body(&mut self) -> Result<Layer> {
        let mut id = None;
        let mut name = None;
        let mut layer_type = None;
        let mut params = Params::new();
        while let Some(key) = self.next_key()? {
            match key.as_ref() {
                "id" => id = Some(self.read_string("layer id")?),
                "name" => name = Some(self.read_string("layer name")?),
                "type" => {
                    let text = self.read_string("layer type")?;
                    // Exact uppercase match: the wire enum, not the
                    // lenient `FromStr`.
                    layer_type = Some(match text.as_str() {
                        "FLOW" => LayerType::Flow,
                        "CONTROL" => LayerType::Control,
                        "INTEGRATION" => LayerType::Integration,
                        other => {
                            return Err(data_error(format!(
                                "unknown variant `{other}` for `LayerType`, \
                                 expected one of: FLOW, CONTROL, INTEGRATION"
                            )))
                        }
                    });
                }
                "params" => params = self.read_params("layer params")?,
                _ => self.skip()?,
            }
        }
        Ok(Layer {
            id: required(id, "id", "layer")?.into(),
            name: required(name, "name", "layer")?,
            layer_type: required(layer_type, "type", "layer")?,
            params,
        })
    }

    fn read_component_body(&mut self) -> Result<Component> {
        let mut id = None;
        let mut name = None;
        let mut entity = None;
        let mut layers = None;
        let mut x_span = None;
        let mut y_span = None;
        let mut ports = Vec::new();
        let mut params = Params::new();
        while let Some(key) = self.next_key()? {
            match key.as_ref() {
                "id" => id = Some(self.read_string("component id")?),
                "name" => name = Some(self.read_string("component name")?),
                "entity" => {
                    let text = self.read_string("component entity")?;
                    entity = Some(
                        text.parse::<Entity>()
                            .map_err(|e| data_error(format!("component entity: {e}")))?,
                    );
                }
                "layers" => layers = Some(self.read_id_array("component layers")?),
                "x-span" => x_span = Some(self.read_i64("component x-span")?),
                "y-span" => y_span = Some(self.read_i64("component y-span")?),
                "ports" => ports = self.read_object_array("ports", Self::read_port_body)?,
                "params" => params = self.read_params("component params")?,
                _ => self.skip()?,
            }
        }
        Ok(Component {
            id: required(id, "id", "component")?.into(),
            name: required(name, "name", "component")?,
            entity: required(entity, "entity", "component")?,
            layers: required(layers, "layers", "component")?,
            // Struct literal, not `Span::new`: wire spans are taken
            // verbatim (no clamping), matching the derived flatten path.
            span: Span {
                x: required(x_span, "x-span", "component")?,
                y: required(y_span, "y-span", "component")?,
            },
            ports,
            params,
        })
    }

    fn read_port_body(&mut self) -> Result<Port> {
        let mut label = None;
        let mut layer = None;
        let mut x = None;
        let mut y = None;
        while let Some(key) = self.next_key()? {
            match key.as_ref() {
                "label" => label = Some(self.read_string("port label")?),
                "layer" => layer = Some(self.read_string("port layer")?),
                "x" => x = Some(self.read_i64("port x")?),
                "y" => y = Some(self.read_i64("port y")?),
                _ => self.skip()?,
            }
        }
        Ok(Port {
            label: required(label, "label", "port")?.into(),
            layer: required(layer, "layer", "port")?.into(),
            x: required(x, "x", "port")?,
            y: required(y, "y", "port")?,
        })
    }

    fn read_connection_body(&mut self) -> Result<Connection> {
        let mut id = None;
        let mut name = None;
        let mut layer = None;
        let mut source = None;
        let mut sinks = None;
        let mut params = Params::new();
        while let Some(key) = self.next_key()? {
            match key.as_ref() {
                "id" => id = Some(self.read_string("connection id")?),
                "name" => name = Some(self.read_string("connection name")?),
                "layer" => layer = Some(self.read_string("connection layer")?),
                "source" => {
                    self.enter_object("connection source")?;
                    source = Some(self.read_target_body()?);
                }
                "sinks" => sinks = Some(self.read_object_array("sinks", Self::read_target_body)?),
                "params" => params = self.read_params("connection params")?,
                _ => self.skip()?,
            }
        }
        Ok(Connection {
            id: required(id, "id", "connection")?.into(),
            name: required(name, "name", "connection")?,
            layer: required(layer, "layer", "connection")?.into(),
            source: required(source, "source", "connection")?,
            sinks: required(sinks, "sinks", "connection")?,
            params,
        })
    }

    fn read_target_body(&mut self) -> Result<Target> {
        let mut component = None;
        let mut port = None;
        while let Some(key) = self.next_key()? {
            match key.as_ref() {
                "component" => component = Some(self.read_string("target component")?),
                "port" => port = self.read_opt_string("target port")?,
                _ => self.skip()?,
            }
        }
        Ok(Target {
            component: required(component, "component", "target")?.into(),
            port: port.map(Into::into),
        })
    }

    /// A feature object: the `type` tag may appear anywhere, so
    /// variant-specific fields are buffered untyped and only the chosen
    /// variant's fields are converted — fields belonging to the *other*
    /// variant stay untyped and are dropped, exactly as the derived
    /// tagged enum ignores unknown fields.
    fn read_feature_body(&mut self) -> Result<Feature> {
        let mut tag = None;
        let mut id = None;
        let mut name = None;
        let mut layer = None;
        let mut depth = None;
        let mut variant: BTreeMap<&'static str, Value> = BTreeMap::new();
        while let Some(key) = self.next_key()? {
            match key.as_ref() {
                "type" => tag = Some(self.read_string("feature type")?),
                "id" => id = Some(self.read_string("feature id")?),
                "name" => name = Some(self.read_string("feature name")?),
                "layer" => layer = Some(self.read_string("feature layer")?),
                "depth" => depth = Some(self.read_i64("feature depth")?),
                "component" => {
                    variant.insert("component", self.reader.read_value()?);
                }
                "location" => {
                    variant.insert("location", self.reader.read_value()?);
                }
                "x-span" => {
                    variant.insert("x-span", self.reader.read_value()?);
                }
                "y-span" => {
                    variant.insert("y-span", self.reader.read_value()?);
                }
                "connection" => {
                    variant.insert("connection", self.reader.read_value()?);
                }
                "width" => {
                    variant.insert("width", self.reader.read_value()?);
                }
                "waypoints" => {
                    variant.insert("waypoints", self.reader.read_value()?);
                }
                _ => self.skip()?,
            }
        }
        let tag = tag.ok_or_else(|| data_error("missing tag `type` for enum `Feature`"))?;
        let id = required(id, "id", "feature")?.into();
        let name = required(name, "name", "feature")?;
        let layer = required(layer, "layer", "feature")?.into();
        let depth = required(depth, "depth", "feature")?;
        let mut take = |field: &str| -> Result<Value> {
            variant
                .remove(field)
                .ok_or_else(|| missing(field, "feature"))
        };
        match tag.as_str() {
            "component" => Ok(Feature::Component(ComponentFeature {
                id,
                name,
                component: value_to_string(take("component")?, "feature component")?.into(),
                layer,
                location: value_to_point(&take("location")?, "feature location")?,
                span: Span {
                    x: value_to_i64(&take("x-span")?, "feature x-span")?,
                    y: value_to_i64(&take("y-span")?, "feature y-span")?,
                },
                depth,
            })),
            "connection" => Ok(Feature::Connection(ConnectionFeature {
                id,
                name,
                connection: value_to_string(take("connection")?, "feature connection")?.into(),
                layer,
                width: value_to_i64(&take("width")?, "feature width")?,
                depth,
                waypoints: value_to_points(&take("waypoints")?, "feature waypoints")?,
            })),
            other => Err(data_error(format!(
                "unknown `type` value `{other}` for `Feature`"
            ))),
        }
    }
}

fn event_mismatch(what: &str, expected: &str, found: &Event<'_>) -> Error {
    let kind = match found {
        Event::Null => "null",
        Event::Bool(_) => "a boolean",
        Event::Number(n) if n.is_f64() => "a floating-point number",
        Event::Number(_) => "an integer",
        Event::String(_) | Event::Key(_) => "a string",
        Event::StartArray | Event::EndArray => "a sequence",
        Event::StartObject | Event::EndObject => "a map",
    };
    data_error(format!(
        "{what}: invalid type: expected {expected}, found {kind}"
    ))
}

#[cfg(test)]
mod tests {
    use crate::Device;

    /// Both paths over the same text; the fast path must reproduce the
    /// reference parse exactly.
    fn assert_equivalent(json: &str) {
        let reference = Device::from_json(json).expect("reference path accepts");
        let fast = Device::from_json_fast(json).expect("fast path accepts");
        assert_eq!(fast, reference);
        // Byte-level check through the canonical serializer.
        assert_eq!(
            fast.to_json().unwrap(),
            reference.to_json().unwrap(),
            "canonical JSON differs"
        );
    }

    #[test]
    fn kitchen_sink_device_matches_reference() {
        assert_equivalent(
            r#"{
                "name": "sink",
                "version": "1.2",
                "layers": [
                    {"id": "f0", "name": "flow", "type": "FLOW"},
                    {"id": "c0", "name": "ctl", "type": "CONTROL",
                     "params": {"depth": 20}}
                ],
                "components": [
                    {"id": "a", "name": "inlet", "entity": "PORT",
                     "layers": ["f0"], "x-span": 200, "y-span": 200,
                     "ports": [{"label": "p", "layer": "f0", "x": 200, "y": 100}]},
                    {"id": "v1", "name": "valve", "entity": "VALVE",
                     "layers": ["c0"], "x-span": 300, "y-span": 300,
                     "params": {"bias": "closed", "nested": {"k": [1, 2]}}}
                ],
                "connections": [
                    {"id": "ch1", "name": "a_to_v", "layer": "f0",
                     "source": {"component": "a", "port": "p"},
                     "sinks": [{"component": "v1"}],
                     "params": {"channelWidth": 400}}
                ],
                "features": [
                    {"type": "component", "id": "pf", "name": "place_a",
                     "component": "a", "layer": "f0",
                     "location": {"x": 10, "y": 20},
                     "x-span": 200, "y-span": 200, "depth": 50},
                    {"type": "connection", "id": "rf", "name": "route_ch1",
                     "connection": "ch1", "layer": "f0", "width": 400,
                     "depth": 50,
                     "waypoints": [{"x": 0, "y": 0}, {"x": 5, "y": 5}]}
                ],
                "valveMap": {"v1": "ch1"},
                "valveTypeMap": {"v1": "NORMALLY_CLOSED"},
                "params": {"x-span": 10000, "y-span": 5000}
            }"#,
        );
    }

    #[test]
    fn minimal_and_defaulted_fields_match() {
        assert_equivalent(r#"{"name": "d"}"#);
        assert_equivalent(r#"{"name": "d", "layers": [], "components": []}"#);
        assert_equivalent(r#"{"name": "d", "valveMap": {"v": "c"}}"#);
    }

    #[test]
    fn unknown_keys_and_duplicates_match() {
        // Unknown keys skipped at every level; duplicate keys keep the
        // last occurrence, matching the Value path's map collapse.
        assert_equivalent(
            r#"{
                "name": "first", "name": "second",
                "futureExtension": {"deep": [1, {"x": null}]},
                "layers": [
                    {"id": "f0", "name": "flow", "type": "FLOW",
                     "vendorNote": "ignored", "name": "flow2"}
                ]
            }"#,
        );
    }

    #[test]
    fn integral_floats_coerce_into_integer_fields() {
        // The vendored serde admits 1.0 into i64 fields; the fast path
        // must do the same.
        assert_equivalent(
            r#"{
                "name": "d",
                "components": [
                    {"id": "a", "name": "n", "entity": "PORT",
                     "layers": ["f0"], "x-span": 200.0, "y-span": 2e2,
                     "ports": [{"label": "p", "layer": "f0", "x": 1.0, "y": 0.0}]}
                ]
            }"#,
        );
    }

    #[test]
    fn escaped_strings_and_unicode_match() {
        assert_equivalent(r#"{"name": "dev é\n\"quoted\"", "params": {"note": "tab\there"}}"#);
    }

    #[test]
    fn both_paths_reject_the_same_documents() {
        for bad in [
            "",
            "[]",
            r#"{"name": 5}"#,
            r#"{}"#,
            r#"{"name": "d", "layers": [{"id": "f0", "name": "f", "type": "flow"}]}"#,
            r#"{"name": "d", "version": "2.0"}"#,
            r#"{"name": "d", "version": "1.0", "valveMap": {"v": "c"}}"#,
            r#"{"name": "d", "valveTypeMap": {"v": "NORMALLY_OPEN"}}"#,
            r#"{"name": "d", "valveMap": {"v": "c"}, "valveTypeMap": {"v": "AJAR"}}"#,
            r#"{"name": "d"} trailing"#,
            r#"{"name": "d", "components": [{"id": "a"}]}"#,
            r#"{"name": "d", "features": [{"id": "f", "name": "n", "layer": "l", "depth": 1}]}"#,
        ] {
            assert!(Device::from_json(bad).is_err(), "reference accepts {bad:?}");
            assert!(Device::from_json_fast(bad).is_err(), "fast accepts {bad:?}");
        }
    }

    #[test]
    fn fast_path_round_trips_builder_output() {
        let device = crate::Device::builder("rt")
            .layer(crate::Layer::new("f0", "flow", crate::LayerType::Flow))
            .build()
            .unwrap();
        let json = device.to_json_pretty().unwrap();
        assert_eq!(Device::from_json_fast(&json).unwrap(), device);
    }
}
