//! The top-level device model.

use crate::component::{Component, Port};
use crate::connection::{Connection, Target};
use crate::entity::Entity;
use crate::error::{Error, Result};
use crate::feature::{ComponentFeature, ConnectionFeature, Feature};
use crate::geometry::{Point, Rect, Span};
use crate::ids::{ComponentId, ConnectionId, FeatureId, LayerId};
use crate::layer::Layer;
use crate::params::{keys, Params};
use crate::valve::{Valve, ValveType};
use crate::version::Version;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A complete continuous-flow microfluidic device in the ParchMint model.
///
/// A `Device` is a netlist (layers, components, connections) optionally
/// enriched with a physical design (`features`, version ≥ 1.1) and valve
/// bindings (`valves`, version ≥ 1.2). It serializes to and from the
/// ParchMint JSON interchange format losslessly.
///
/// # Examples
///
/// ```
/// use parchmint::{Device, Layer, LayerType, Component, Connection, Entity, Port, Target};
/// use parchmint::geometry::Span;
///
/// let device = Device::builder("demo")
///     .layer(Layer::new("f0", "flow", LayerType::Flow))
///     .component(
///         Component::new("in1", "inlet", Entity::Port, ["f0"], Span::square(200))
///             .with_port(Port::new("p", "f0", 200, 100)),
///     )
///     .component(
///         Component::new("m1", "mixer", Entity::Mixer, ["f0"], Span::new(2000, 1000))
///             .with_port(Port::new("in", "f0", 0, 500)),
///     )
///     .connection(Connection::new(
///         "ch1", "inlet_to_mixer", "f0",
///         Target::new("in1", "p"),
///         [Target::new("m1", "in")],
///     ))
///     .build()
///     .unwrap();
///
/// let json = device.to_json_pretty().unwrap();
/// let back = Device::from_json(&json).unwrap();
/// assert_eq!(back, device);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(into = "DeviceRepr", try_from = "DeviceRepr")]
pub struct Device {
    /// Human-readable device name.
    pub name: String,
    /// Format revision the device targets.
    pub version: Version,
    /// Fabrication layers, in stack order.
    pub layers: Vec<Layer>,
    /// Component instances.
    pub components: Vec<Component>,
    /// Channel nets.
    pub connections: Vec<Connection>,
    /// Physical-design features (placements and routes); empty pre-layout.
    pub features: Vec<Feature>,
    /// Valve bindings (which valve pinches which connection), kept sorted
    /// by valve component id — the wire format stores them as a map, so
    /// only a canonical order survives round-trips.
    pub valves: Vec<Valve>,
    /// Device-level open parameters, conventionally including
    /// `x-span`/`y-span` for the die outline.
    pub params: Params,
}

impl Device {
    /// Creates an empty device at the current format version.
    pub fn new(name: impl Into<String>) -> Self {
        Device {
            name: name.into(),
            version: Version::CURRENT,
            layers: Vec::new(),
            components: Vec::new(),
            connections: Vec::new(),
            features: Vec::new(),
            valves: Vec::new(),
            params: Params::new(),
        }
    }

    /// Starts a checked builder; see [`DeviceBuilder`](crate::DeviceBuilder).
    pub fn builder(name: impl Into<String>) -> crate::builder::DeviceBuilder {
        crate::builder::DeviceBuilder::new(name)
    }

    // ---- JSON -----------------------------------------------------------

    /// Parses a device from ParchMint JSON text.
    pub fn from_json(json: &str) -> Result<Self> {
        Ok(serde_json::from_str(json)?)
    }

    /// Parses a device from ParchMint JSON text via the streaming
    /// zero-copy reader — the hot path for large (FPVA-scale) devices.
    ///
    /// Semantically identical to [`Device::from_json`] (the `Value` tree
    /// path stays as the reference implementation; an equivalence
    /// proptest pins the two together), but runs in a single pass over
    /// the input with borrowed keys/strings and no intermediate
    /// `Value`/`Fragment` materialization.
    pub fn from_json_fast(json: &str) -> Result<Self> {
        crate::ingest::device_from_str(json)
    }

    /// Serializes the device to compact ParchMint JSON.
    pub fn to_json(&self) -> Result<String> {
        Ok(serde_json::to_string(self)?)
    }

    /// Serializes the device to pretty-printed ParchMint JSON.
    pub fn to_json_pretty(&self) -> Result<String> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    // ---- lookups --------------------------------------------------------

    /// Looks up a layer by id.
    ///
    /// Linear scan — fine for one-off queries, but algorithm code doing
    /// repeated lookups should compile the device once into a
    /// [`CompiledDevice`](crate::CompiledDevice) and use its O(1) index.
    pub fn layer(&self, id: &str) -> Option<&Layer> {
        self.layers.iter().find(|l| l.id == *id)
    }

    /// Looks up a component by id.
    ///
    /// Linear scan — prefer [`CompiledDevice`](crate::CompiledDevice) for
    /// repeated lookups on hot paths.
    pub fn component(&self, id: &str) -> Option<&Component> {
        self.components.iter().find(|c| c.id == *id)
    }

    /// Looks up a connection by id.
    ///
    /// Linear scan — prefer [`CompiledDevice`](crate::CompiledDevice) for
    /// repeated lookups on hot paths.
    pub fn connection(&self, id: &str) -> Option<&Connection> {
        self.connections.iter().find(|c| c.id == *id)
    }

    /// Looks up a feature by id.
    ///
    /// Linear scan — prefer [`CompiledDevice`](crate::CompiledDevice) for
    /// repeated lookups on hot paths.
    pub fn feature(&self, id: &str) -> Option<&Feature> {
        self.features.iter().find(|f| f.id() == &FeatureId::new(id))
    }

    /// The placement feature for `component`, if the device is placed.
    ///
    /// Linear scan over features; [`CompiledDevice`](crate::CompiledDevice)
    /// pre-resolves placements for hot paths.
    pub fn placement_of(&self, component: &ComponentId) -> Option<&ComponentFeature> {
        self.features
            .iter()
            .filter_map(Feature::as_component)
            .find(|f| &f.component == component)
    }

    /// The route feature for `connection`, if the device is routed.
    pub fn route_of(&self, connection: &ConnectionId) -> Option<&ConnectionFeature> {
        self.features
            .iter()
            .filter_map(Feature::as_connection)
            .find(|f| &f.connection == connection)
    }

    /// The valve binding for a valve component, when one exists.
    pub fn valve_on(&self, component: &ComponentId) -> Option<&Valve> {
        self.valves.iter().find(|v| &v.component == component)
    }

    /// Valves pinching `connection`.
    pub fn valves_controlling<'a>(
        &'a self,
        connection: &'a ConnectionId,
    ) -> impl Iterator<Item = &'a Valve> {
        self.valves
            .iter()
            .filter(move |v| &v.controls == connection)
    }

    /// Resolves a connection terminal to the component and port it names.
    ///
    /// Terminals without an explicit port resolve to the component's sole
    /// port when it has exactly one, otherwise to no port.
    pub fn resolve_target(&self, target: &Target) -> Option<(&Component, Option<&Port>)> {
        let component = self.component(target.component.as_str())?;
        let port = match &target.port {
            Some(label) => component.port(label.as_str()),
            None if component.ports.len() == 1 => Some(&component.ports[0]),
            None => None,
        };
        Some((component, port))
    }

    /// Absolute position of a terminal, when the device is placed.
    ///
    /// Falls back to the placed component centre for port-less terminals.
    /// Resolves through the linear lookups above; routers and evaluators
    /// should use [`CompiledDevice::target_position`](crate::CompiledDevice)
    /// instead.
    pub fn target_position(&self, target: &Target) -> Option<Point> {
        let (component, port) = self.resolve_target(target)?;
        let placement = self.placement_of(&component.id)?;
        Some(match port {
            Some(p) => placement.location + p.offset(),
            None => placement.footprint().center(),
        })
    }

    // ---- iteration helpers ------------------------------------------------

    /// Iterates over components whose entity matches `entity`.
    pub fn components_of<'a>(&'a self, entity: &'a Entity) -> impl Iterator<Item = &'a Component> {
        self.components.iter().filter(move |c| &c.entity == entity)
    }

    /// Iterates over connections fabricated on `layer`.
    pub fn connections_on<'a>(
        &'a self,
        layer: &'a LayerId,
    ) -> impl Iterator<Item = &'a Connection> {
        self.connections.iter().filter(move |c| &c.layer == layer)
    }

    /// Iterates over the connections touching `component`.
    pub fn connections_touching<'a>(
        &'a self,
        component: &'a ComponentId,
    ) -> impl Iterator<Item = &'a Connection> {
        self.connections
            .iter()
            .filter(move |c| c.touches(component))
    }

    /// Total number of ports declared across all components.
    pub fn port_count(&self) -> usize {
        self.components.iter().map(|c| c.ports.len()).sum()
    }

    // ---- geometry ---------------------------------------------------------

    /// The declared die outline from `params` (`x-span` × `y-span`), if set.
    pub fn declared_bounds(&self) -> Option<Span> {
        let x = self.params.get_i64(keys::X_SPAN)?;
        let y = self.params.get_i64(keys::Y_SPAN)?;
        Some(Span::new(x, y))
    }

    /// Sets the declared die outline in `params`.
    pub fn set_declared_bounds(&mut self, span: Span) {
        self.params.set(keys::X_SPAN, span.x);
        self.params.set(keys::Y_SPAN, span.y);
    }

    /// Bounding box of all placed features, or `None` pre-layout.
    pub fn feature_bounds(&self) -> Option<Rect> {
        let mut acc: Option<Rect> = None;
        for feature in &self.features {
            let rect = match feature {
                Feature::Component(f) => Some(f.footprint()),
                Feature::Connection(f) => f.bounding_box(),
            };
            if let Some(r) = rect {
                acc = Some(match acc {
                    Some(a) => a.union(r),
                    None => r,
                });
            }
        }
        acc
    }

    /// True when every component has a placement feature.
    pub fn is_placed(&self) -> bool {
        !self.components.is_empty()
            && self
                .components
                .iter()
                .all(|c| self.placement_of(&c.id).is_some())
    }

    /// True when every connection has a route feature.
    pub fn is_routed(&self) -> bool {
        self.connections
            .iter()
            .all(|c| self.route_of(&c.id).is_some())
    }

    /// Removes all physical-design features, returning the netlist to its
    /// pre-layout state.
    pub fn strip_features(&mut self) {
        self.features.clear();
    }

    /// Raises `version` if the content present requires a newer revision
    /// (features need 1.1, valves need 1.2). Call after mutating a parsed
    /// device in place.
    pub fn bump_version_to_content(&mut self) {
        self.version = self.version.max(self.minimum_version());
    }

    /// The lowest format version able to represent this device's content.
    pub fn minimum_version(&self) -> Version {
        if !self.valves.is_empty() {
            Version::V1_2
        } else if !self.features.is_empty() {
            Version::V1_1
        } else {
            Version::V1_0
        }
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device `{}` (v{}): {} layers, {} components, {} connections, {} valves",
            self.name,
            self.version,
            self.layers.len(),
            self.components.len(),
            self.connections.len(),
            self.valves.len(),
        )
    }
}

// ---------------------------------------------------------------------------
// Wire representation
// ---------------------------------------------------------------------------

/// The on-the-wire JSON shape of a device.
///
/// Differs from [`Device`] in exactly one way: valve bindings are split into
/// the `valveMap` / `valveTypeMap` pair mandated by ParchMint 1.2.
#[derive(Serialize, Deserialize)]
struct DeviceRepr {
    name: String,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    version: Option<Version>,
    #[serde(default)]
    layers: Vec<Layer>,
    #[serde(default)]
    components: Vec<Component>,
    #[serde(default)]
    connections: Vec<Connection>,
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    features: Vec<Feature>,
    #[serde(
        rename = "valveMap",
        default,
        skip_serializing_if = "BTreeMap::is_empty"
    )]
    valve_map: BTreeMap<String, String>,
    #[serde(
        rename = "valveTypeMap",
        default,
        skip_serializing_if = "BTreeMap::is_empty"
    )]
    valve_type_map: BTreeMap<String, String>,
    #[serde(default, skip_serializing_if = "Params::is_empty")]
    params: Params,
}

impl From<Device> for DeviceRepr {
    fn from(device: Device) -> Self {
        let mut valve_map = BTreeMap::new();
        let mut valve_type_map = BTreeMap::new();
        for valve in &device.valves {
            valve_map.insert(valve.component.to_string(), valve.controls.to_string());
            valve_type_map.insert(
                valve.component.to_string(),
                valve.valve_type.name().to_owned(),
            );
        }
        DeviceRepr {
            name: device.name,
            version: Some(device.version),
            layers: device.layers,
            components: device.components,
            connections: device.connections,
            features: device.features,
            valve_map,
            valve_type_map,
            params: device.params,
        }
    }
}

impl TryFrom<DeviceRepr> for Device {
    type Error = Error;

    fn try_from(repr: DeviceRepr) -> Result<Self> {
        finish_device(RawDevice {
            name: repr.name,
            version: repr.version,
            layers: repr.layers,
            components: repr.components,
            connections: repr.connections,
            features: repr.features,
            valve_map: repr.valve_map,
            valve_type_map: repr.valve_type_map,
            params: repr.params,
        })
    }
}

/// Parsed-but-unvalidated device fields, shared between the `Value`
/// reference path ([`DeviceRepr`]) and the streaming fast path
/// (`crate::ingest`): both funnel through [`finish_device`] so valve-map
/// resolution, version inference, and the version/content checks — and
/// their error messages — cannot drift apart.
pub(crate) struct RawDevice {
    pub(crate) name: String,
    pub(crate) version: Option<Version>,
    pub(crate) layers: Vec<Layer>,
    pub(crate) components: Vec<Component>,
    pub(crate) connections: Vec<Connection>,
    pub(crate) features: Vec<Feature>,
    pub(crate) valve_map: BTreeMap<String, String>,
    pub(crate) valve_type_map: BTreeMap<String, String>,
    pub(crate) params: Params,
}

/// Resolves valve maps, infers/validates the version, and assembles the
/// final [`Device`].
pub(crate) fn finish_device(raw: RawDevice) -> Result<Device> {
    let mut valves = Vec::with_capacity(raw.valve_map.len());
    for (component, controls) in &raw.valve_map {
        let valve_type = match raw.valve_type_map.get(component) {
            Some(s) => s
                .parse::<ValveType>()
                .map_err(|e| Error::invalid_model(format!("valve `{component}`: {e}")))?,
            None => ValveType::default(),
        };
        valves.push(Valve::new(
            component.as_str(),
            controls.as_str(),
            valve_type,
        ));
    }
    for orphan in raw.valve_type_map.keys() {
        if !raw.valve_map.contains_key(orphan) {
            return Err(Error::invalid_model(format!(
                "valveTypeMap entry `{orphan}` has no valveMap partner"
            )));
        }
    }

    let inferred = if !valves.is_empty() {
        Version::V1_2
    } else if !raw.features.is_empty() {
        Version::V1_1
    } else {
        Version::V1_0
    };
    let version = raw.version.unwrap_or(inferred);
    if version < Version::V1_1 && !raw.features.is_empty() {
        return Err(Error::invalid_model(format!(
            "version {version} does not support features (requires >= 1.1)"
        )));
    }
    if version < Version::V1_2 && !valves.is_empty() {
        return Err(Error::invalid_model(format!(
            "version {version} does not support valve maps (requires >= 1.2)"
        )));
    }

    Ok(Device {
        name: raw.name,
        version,
        layers: raw.layers,
        components: raw.components,
        connections: raw.connections,
        features: raw.features,
        valves,
        params: raw.params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerType;

    fn two_component_device() -> Device {
        let mut d = Device::new("dev");
        d.layers.push(Layer::new("f0", "flow", LayerType::Flow));
        d.components.push(
            Component::new("a", "inlet", Entity::Port, ["f0"], Span::square(200))
                .with_port(Port::new("p", "f0", 200, 100)),
        );
        d.components.push(
            Component::new("b", "mixer", Entity::Mixer, ["f0"], Span::new(1000, 500))
                .with_port(Port::new("in", "f0", 0, 250))
                .with_port(Port::new("out", "f0", 1000, 250)),
        );
        d.connections.push(Connection::new(
            "ch1",
            "a_to_b",
            "f0",
            Target::new("a", "p"),
            [Target::new("b", "in")],
        ));
        d.set_declared_bounds(Span::new(10_000, 5_000));
        d
    }

    #[test]
    fn lookups() {
        let d = two_component_device();
        assert!(d.layer("f0").is_some());
        assert!(d.layer("zz").is_none());
        assert_eq!(d.component("b").unwrap().ports.len(), 2);
        assert_eq!(d.connection("ch1").unwrap().name, "a_to_b");
        assert_eq!(d.port_count(), 3);
    }

    #[test]
    fn resolve_target_explicit_and_implicit() {
        let d = two_component_device();
        let (c, p) = d.resolve_target(&Target::new("b", "out")).unwrap();
        assert_eq!(c.id, "b");
        assert_eq!(p.unwrap().label, "out");

        // Component-only terminal on a single-port component resolves.
        let (c, p) = d.resolve_target(&Target::component_only("a")).unwrap();
        assert_eq!(c.id, "a");
        assert_eq!(p.unwrap().label, "p");

        // Component-only terminal on a multi-port component gives no port.
        let (_, p) = d.resolve_target(&Target::component_only("b")).unwrap();
        assert!(p.is_none());

        assert!(d.resolve_target(&Target::new("zz", "p")).is_none());
    }

    #[test]
    fn placement_route_and_positions() {
        let mut d = two_component_device();
        assert!(!d.is_placed());
        d.features.push(
            ComponentFeature::new("pf_a", "a", "f0", Point::new(0, 0), Span::square(200), 50)
                .into(),
        );
        d.features.push(
            ComponentFeature::new(
                "pf_b",
                "b",
                "f0",
                Point::new(1000, 0),
                Span::new(1000, 500),
                50,
            )
            .into(),
        );
        d.features.push(
            ConnectionFeature::new(
                "rf_1",
                "ch1",
                "f0",
                400,
                50,
                [Point::new(200, 100), Point::new(1000, 100)],
            )
            .into(),
        );
        assert!(d.is_placed());
        assert!(d.is_routed());
        assert_eq!(
            d.target_position(&Target::new("b", "in")).unwrap(),
            Point::new(1000, 250)
        );
        assert_eq!(
            d.target_position(&Target::component_only("b")).unwrap(),
            Point::new(1500, 250),
            "port-less terminal falls back to placed centre"
        );
        assert!(d.placement_of(&"a".into()).is_some());
        assert!(d.route_of(&"ch1".into()).is_some());
        let fb = d.feature_bounds().unwrap();
        assert_eq!(fb.min, Point::new(0, 0));
        assert_eq!(fb.max(), Point::new(2000, 500));

        d.strip_features();
        assert!(d.features.is_empty());
        assert!(!d.is_placed());
    }

    #[test]
    fn empty_device_is_not_placed_and_vacuously_routed() {
        let d = Device::new("empty");
        assert!(!d.is_placed());
        assert!(d.is_routed(), "no connections means routing is complete");
        assert!(d.feature_bounds().is_none());
    }

    #[test]
    fn declared_bounds_round_trip() {
        let mut d = Device::new("x");
        assert!(d.declared_bounds().is_none());
        d.set_declared_bounds(Span::new(123, 456));
        assert_eq!(d.declared_bounds(), Some(Span::new(123, 456)));
    }

    #[test]
    fn valve_maps_round_trip() {
        let mut d = two_component_device();
        d.components.push(Component::new(
            "v1",
            "valve",
            Entity::Valve,
            ["f0"],
            Span::square(300),
        ));
        d.valves
            .push(Valve::new("v1", "ch1", ValveType::NormallyClosed));

        let json = d.to_json().unwrap();
        assert!(json.contains(r#""valveMap":{"v1":"ch1"}"#), "json: {json}");
        assert!(json.contains(r#""valveTypeMap":{"v1":"NORMALLY_CLOSED"}"#));
        let back = Device::from_json(&json).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.valve_on(&"v1".into()).unwrap().controls, "ch1");
        assert_eq!(back.valves_controlling(&"ch1".into()).count(), 1);
    }

    #[test]
    fn missing_valve_type_defaults_to_normally_open() {
        let json = r#"{
            "name": "d", "layers": [], "components": [], "connections": [],
            "valveMap": {"v1": "ch1"}
        }"#;
        let d = Device::from_json(json).unwrap();
        assert_eq!(d.valves[0].valve_type, ValveType::NormallyOpen);
        assert_eq!(d.version, Version::V1_2, "valves imply 1.2");
    }

    #[test]
    fn orphan_valve_type_map_entry_rejected() {
        let json = r#"{
            "name": "d", "layers": [], "components": [], "connections": [],
            "valveMap": {"v1": "ch1"},
            "valveTypeMap": {"v2": "NORMALLY_OPEN"}
        }"#;
        let err = Device::from_json(json).unwrap_err();
        assert!(err.to_string().contains("v2"));
    }

    #[test]
    fn bad_valve_type_rejected() {
        let json = r#"{
            "name": "d",
            "valveMap": {"v1": "ch1"},
            "valveTypeMap": {"v1": "AJAR"}
        }"#;
        let err = Device::from_json(json).unwrap_err();
        assert!(err.to_string().contains("AJAR"));
    }

    #[test]
    fn version_inference_without_explicit_field() {
        let d = Device::from_json(r#"{"name": "d"}"#).unwrap();
        assert_eq!(d.version, Version::V1_0);
    }

    #[test]
    fn declared_version_too_low_for_features_rejected() {
        let json = r#"{
            "name": "d", "version": "1.0",
            "features": [{"type": "connection", "id": "f", "name": "n",
                          "connection": "c", "layer": "l", "width": 1, "depth": 1,
                          "waypoints": []}]
        }"#;
        let err = Device::from_json(json).unwrap_err();
        assert!(err.to_string().contains("1.0"));
    }

    #[test]
    fn declared_version_too_low_for_valves_rejected() {
        let json = r#"{"name": "d", "version": "1.1", "valveMap": {"v": "c"}}"#;
        assert!(Device::from_json(json).is_err());
    }

    #[test]
    fn minimum_version_tracks_content() {
        let mut d = two_component_device();
        assert_eq!(d.minimum_version(), Version::V1_0);
        d.features
            .push(ComponentFeature::new("f", "a", "f0", Point::ORIGIN, Span::square(1), 1).into());
        assert_eq!(d.minimum_version(), Version::V1_1);
        d.valves
            .push(Valve::new("v", "ch1", ValveType::NormallyOpen));
        assert_eq!(d.minimum_version(), Version::V1_2);
    }

    #[test]
    fn filters() {
        let d = two_component_device();
        assert_eq!(d.components_of(&Entity::Mixer).count(), 1);
        assert_eq!(d.components_of(&Entity::Valve).count(), 0);
        assert_eq!(d.connections_on(&"f0".into()).count(), 1);
        assert_eq!(d.connections_on(&"c0".into()).count(), 0);
        assert_eq!(d.connections_touching(&"a".into()).count(), 1);
        assert_eq!(d.connections_touching(&"zz".into()).count(), 0);
    }

    #[test]
    fn display_summary() {
        let d = two_component_device();
        assert_eq!(
            d.to_string(),
            "device `dev` (v1.2): 1 layers, 2 components, 1 connections, 0 valves"
        );
    }

    #[test]
    fn pretty_json_parses_back() {
        let d = two_component_device();
        let pretty = d.to_json_pretty().unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(Device::from_json(&pretty).unwrap(), d);
    }
}
