//! Compiled device IR: interned identifiers and O(1) lookups.
//!
//! Every consumer crate used to re-derive its own ad-hoc view of a
//! [`Device`] with string-keyed linear scans. [`CompiledDevice`] compiles a
//! device **once** into dense integer handles ([`CompIx`], [`ConnIx`],
//! [`LayerIx`], [`PortIx`]) plus hash tables from string ids to handles,
//! per-layer connection partitions, component→connection incidence lists,
//! and pre-resolved connection endpoints. The compiled view owns its device
//! and is immutable, so it can be shared across threads and pipeline stages
//! via [`Arc`] (see [`CompiledDevice::into_shared`]).
//!
//! ## Invariants
//!
//! - **Handles are declaration-ordered**: `CompIx(i)` is `device.components[i]`,
//!   and likewise for layers, connections, and (flattened) ports. Iterating
//!   handles reproduces declaration order exactly, so algorithms that were
//!   deterministic over `device.components` stay deterministic over handles.
//! - **First occurrence wins**: when a (necessarily invalid) device declares
//!   duplicate ids, the id→handle tables bind each id to its first
//!   occurrence, matching the linear-scan semantics of
//!   [`Device::component`] et al. Compilation never fails — validators run
//!   on compiled views of invalid devices and read the raw vectors through
//!   [`CompiledDevice::device`] to diagnose duplicates.
//! - **Dangling references resolve to `None`**: endpoints naming unknown
//!   components or ports carry `None` handles rather than panicking, again
//!   so diagnostics can run downstream of compilation.
//!
//! ## Example
//!
//! ```
//! use parchmint::{CompiledDevice, Device, Layer, LayerType, Component,
//!                 Connection, Entity, Port, Target};
//! use parchmint::geometry::Span;
//!
//! let device = Device::builder("demo")
//!     .layer(Layer::new("f0", "flow", LayerType::Flow))
//!     .component(
//!         Component::new("in1", "inlet", Entity::Port, ["f0"], Span::square(200))
//!             .with_port(Port::new("p", "f0", 200, 100)),
//!     )
//!     .component(
//!         Component::new("m1", "mixer", Entity::Mixer, ["f0"], Span::new(2000, 1000))
//!             .with_port(Port::new("in", "f0", 0, 500)),
//!     )
//!     .connection(Connection::new(
//!         "ch1", "inlet_to_mixer", "f0",
//!         Target::new("in1", "p"),
//!         [Target::new("m1", "in")],
//!     ))
//!     .build()
//!     .unwrap();
//!
//! let compiled = CompiledDevice::compile(device);
//! let m1 = compiled.comp_ix("m1").unwrap();
//! assert_eq!(compiled.component(m1).name, "mixer");
//! let ch1 = compiled.conn_ix("ch1").unwrap();
//! assert_eq!(compiled.source(ch1).component, compiled.comp_ix("in1"));
//! assert_eq!(compiled.incident(m1), &[ch1]);
//! ```

use crate::component::{Component, Port};
use crate::connection::{Connection, Target};
use crate::device::Device;
use crate::feature::{ComponentFeature, ConnectionFeature, Feature};
use crate::geometry::Point;
use crate::ids::PortLabel;
use crate::layer::{Layer, LayerType};
use crate::valve::Valve;
use std::collections::HashMap;
use std::sync::Arc;

macro_rules! handle {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Wraps a dense index as a handle.
            pub fn new(index: usize) -> Self {
                $name(index as u32)
            }

            /// The handle as a dense `usize` index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$name> for usize {
            fn from(ix: $name) -> usize {
                ix.index()
            }
        }
    };
}

handle! {
    /// Dense handle to a [`Layer`] in a [`CompiledDevice`].
    LayerIx
}

handle! {
    /// Dense handle to a [`Component`] in a [`CompiledDevice`].
    CompIx
}

handle! {
    /// Dense handle to a [`Connection`] in a [`CompiledDevice`].
    ConnIx
}

handle! {
    /// Dense handle to a [`Port`] in a [`CompiledDevice`]'s flattened,
    /// device-wide port table.
    PortIx
}

/// A pre-resolved connection terminal: the component and port handles a
/// [`Target`] names, following the resolution rules of
/// [`Device::resolve_target`].
///
/// `component` is `None` for dangling terminals. `port` is `None` when the
/// terminal names no port and the component does not have exactly one, or
/// when the named port label does not exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Endpoint {
    /// Handle of the component the terminal attaches to, if it exists.
    pub component: Option<CompIx>,
    /// Handle of the resolved port, when one resolves.
    pub port: Option<PortIx>,
}

#[derive(Debug)]
struct CompiledConnection {
    source: Endpoint,
    sinks: Vec<Endpoint>,
    layer: Option<LayerIx>,
}

/// An immutable, index-accelerated view of a [`Device`].
///
/// Compile once with [`CompiledDevice::compile`] (or
/// [`CompiledDevice::from_ref`]), then hand `&CompiledDevice` — or a cheap
/// [`Arc`] clone from [`CompiledDevice::into_shared`] — to every algorithm
/// that consumes the device. All lookups are O(1); all slices iterate in
/// declaration order. The underlying device remains reachable through
/// [`CompiledDevice::device`] for raw-vector traversals and serialization.
#[derive(Debug)]
pub struct CompiledDevice {
    device: Device,

    layer_ix: HashMap<String, LayerIx>,
    comp_ix: HashMap<String, CompIx>,
    conn_ix: HashMap<String, ConnIx>,
    feature_ix: HashMap<String, usize>,

    // Flattened device-wide port table: ports[i] = (owner, index into
    // owner.ports). Per-component ranges are contiguous.
    ports: Vec<(CompIx, u32)>,
    port_range: Vec<(u32, u32)>,
    port_ix: HashMap<(CompIx, PortLabel), PortIx>,

    connections: Vec<CompiledConnection>,
    incidence: Vec<Vec<ConnIx>>,
    layer_conns: Vec<Vec<ConnIx>>,

    placement: Vec<Option<usize>>,
    route: Vec<Option<usize>>,

    valve_on: Vec<Option<usize>>,
    valves_controlling: Vec<Vec<usize>>,
    valve_component: Vec<Option<CompIx>>,
    valve_controls: Vec<Option<ConnIx>>,
}

impl CompiledDevice {
    /// Compiles `device`, taking ownership. Never fails: invalid devices
    /// compile with `None` handles for dangling references (see the module
    /// docs for the invariants).
    pub fn compile(device: Device) -> Self {
        let _span = parchmint_obs::Span::enter("ir.compile");
        parchmint_resilience::fault::inject("ir.compile");
        let mut layer_ix = HashMap::with_capacity(device.layers.len());
        for (i, layer) in device.layers.iter().enumerate() {
            layer_ix
                .entry(layer.id.as_str().to_owned())
                .or_insert(LayerIx::new(i));
        }

        let mut comp_ix = HashMap::with_capacity(device.components.len());
        for (i, component) in device.components.iter().enumerate() {
            comp_ix
                .entry(component.id.as_str().to_owned())
                .or_insert(CompIx::new(i));
        }

        let mut conn_ix = HashMap::with_capacity(device.connections.len());
        for (i, connection) in device.connections.iter().enumerate() {
            conn_ix
                .entry(connection.id.as_str().to_owned())
                .or_insert(ConnIx::new(i));
        }

        let mut feature_ix = HashMap::with_capacity(device.features.len());
        for (i, feature) in device.features.iter().enumerate() {
            feature_ix
                .entry(feature.id().as_str().to_owned())
                .or_insert(i);
        }

        let mut ports = Vec::with_capacity(device.port_count());
        let mut port_range = Vec::with_capacity(device.components.len());
        let mut port_ix = HashMap::with_capacity(device.port_count());
        for (i, component) in device.components.iter().enumerate() {
            let owner = CompIx::new(i);
            let start = ports.len() as u32;
            for (j, port) in component.ports.iter().enumerate() {
                let handle = PortIx::new(ports.len());
                ports.push((owner, j as u32));
                // First label occurrence wins, mirroring `Component::port`.
                // Duplicate-id components never get here (owner is the
                // interned first occurrence), so later duplicates simply
                // have empty ranges of their own.
                port_ix.entry((owner, port.label.clone())).or_insert(handle);
            }
            port_range.push((start, ports.len() as u32));
        }

        let resolve = |target: &Target| -> Endpoint {
            let Some(&owner) = comp_ix.get(target.component.as_str()) else {
                return Endpoint {
                    component: None,
                    port: None,
                };
            };
            let component = &device.components[owner.index()];
            let port = match &target.port {
                Some(label) => port_ix.get(&(owner, label.clone())).copied(),
                None if component.ports.len() == 1 => {
                    Some(PortIx::new(port_range[owner.index()].0 as usize))
                }
                None => None,
            };
            Endpoint {
                component: Some(owner),
                port,
            }
        };

        let mut connections = Vec::with_capacity(device.connections.len());
        let mut incidence = vec![Vec::new(); device.components.len()];
        let mut layer_conns = vec![Vec::new(); device.layers.len()];
        for (i, connection) in device.connections.iter().enumerate() {
            let handle = ConnIx::new(i);
            let source = resolve(&connection.source);
            let sinks: Vec<Endpoint> = connection.sinks.iter().map(&resolve).collect();
            let layer = layer_ix.get(connection.layer.as_str()).copied();
            if let Some(l) = layer {
                layer_conns[l.index()].push(handle);
            }
            // One incidence entry per touched component, mirroring
            // `Connection::touches` (a component appearing as both source
            // and sink counts once).
            let mut touched: Vec<CompIx> = Vec::with_capacity(1 + sinks.len());
            for endpoint in std::iter::once(&source).chain(sinks.iter()) {
                if let Some(c) = endpoint.component {
                    if !touched.contains(&c) {
                        touched.push(c);
                    }
                }
            }
            for c in touched {
                incidence[c.index()].push(handle);
            }
            connections.push(CompiledConnection {
                source,
                sinks,
                layer,
            });
        }

        let mut placement = vec![None; device.components.len()];
        let mut route = vec![None; device.connections.len()];
        for (i, feature) in device.features.iter().enumerate() {
            match feature {
                Feature::Component(f) => {
                    if let Some(&c) = comp_ix.get(f.component.as_str()) {
                        let slot = &mut placement[c.index()];
                        if slot.is_none() {
                            *slot = Some(i);
                        }
                    }
                }
                Feature::Connection(f) => {
                    if let Some(&c) = conn_ix.get(f.connection.as_str()) {
                        let slot = &mut route[c.index()];
                        if slot.is_none() {
                            *slot = Some(i);
                        }
                    }
                }
            }
        }

        let mut valve_on = vec![None; device.components.len()];
        let mut valves_controlling = vec![Vec::new(); device.connections.len()];
        let mut valve_component = Vec::with_capacity(device.valves.len());
        let mut valve_controls = Vec::with_capacity(device.valves.len());
        for (i, valve) in device.valves.iter().enumerate() {
            let comp = comp_ix.get(valve.component.as_str()).copied();
            let conn = conn_ix.get(valve.controls.as_str()).copied();
            if let Some(c) = comp {
                let slot = &mut valve_on[c.index()];
                if slot.is_none() {
                    *slot = Some(i);
                }
            }
            if let Some(c) = conn {
                valves_controlling[c.index()].push(i);
            }
            valve_component.push(comp);
            valve_controls.push(conn);
        }

        if parchmint_obs::enabled() {
            parchmint_obs::count("ir.compile.layers", device.layers.len() as u64);
            parchmint_obs::count("ir.compile.components", device.components.len() as u64);
            parchmint_obs::count("ir.compile.connections", device.connections.len() as u64);
            parchmint_obs::count("ir.compile.ports", ports.len() as u64);
            parchmint_obs::count("ir.compile.features", device.features.len() as u64);
            parchmint_obs::count("ir.compile.valves", device.valves.len() as u64);
        }

        CompiledDevice {
            device,
            layer_ix,
            comp_ix,
            conn_ix,
            feature_ix,
            ports,
            port_range,
            port_ix,
            connections,
            incidence,
            layer_conns,
            placement,
            route,
            valve_on,
            valves_controlling,
            valve_component,
            valve_controls,
        }
    }

    /// Compiles a borrowed device by cloning it first. Prefer
    /// [`CompiledDevice::compile`] when ownership can be transferred.
    pub fn from_ref(device: &Device) -> Self {
        Self::compile(device.clone())
    }

    /// Wraps the compiled view in an [`Arc`] for sharing across threads and
    /// pipeline stages.
    pub fn into_shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Consumes the compiled view, returning the device.
    pub fn into_device(self) -> Device {
        self.device
    }

    // ---- handle interning -------------------------------------------------

    /// Handle for a layer id.
    pub fn layer_ix(&self, id: &str) -> Option<LayerIx> {
        self.layer_ix.get(id).copied()
    }

    /// Handle for a component id.
    pub fn comp_ix(&self, id: &str) -> Option<CompIx> {
        self.comp_ix.get(id).copied()
    }

    /// Handle for a connection id.
    pub fn conn_ix(&self, id: &str) -> Option<ConnIx> {
        self.conn_ix.get(id).copied()
    }

    /// Handle for a port, by owning component and label.
    pub fn port_ix(&self, component: CompIx, label: &str) -> Option<PortIx> {
        // The map is keyed by owned labels; build one only on this cold path.
        self.port_ix
            .get(&(component, PortLabel::new(label)))
            .copied()
    }

    // ---- handle → entity --------------------------------------------------

    /// The layer behind a handle.
    pub fn layer(&self, ix: LayerIx) -> &Layer {
        &self.device.layers[ix.index()]
    }

    /// The component behind a handle.
    pub fn component(&self, ix: CompIx) -> &Component {
        &self.device.components[ix.index()]
    }

    /// The connection behind a handle.
    pub fn connection(&self, ix: ConnIx) -> &Connection {
        &self.device.connections[ix.index()]
    }

    /// The port behind a handle.
    pub fn port(&self, ix: PortIx) -> &Port {
        let (owner, local) = self.ports[ix.index()];
        &self.device.components[owner.index()].ports[local as usize]
    }

    /// The component owning a port.
    pub fn port_owner(&self, ix: PortIx) -> CompIx {
        self.ports[ix.index()].0
    }

    // ---- id → entity (O(1) replacements for the `Device` scans) -----------

    /// O(1) equivalent of [`Device::layer`].
    pub fn layer_by_id(&self, id: &str) -> Option<&Layer> {
        self.layer_ix(id).map(|ix| self.layer(ix))
    }

    /// O(1) equivalent of [`Device::component`].
    pub fn component_by_id(&self, id: &str) -> Option<&Component> {
        self.comp_ix(id).map(|ix| self.component(ix))
    }

    /// O(1) equivalent of [`Device::connection`].
    pub fn connection_by_id(&self, id: &str) -> Option<&Connection> {
        self.conn_ix(id).map(|ix| self.connection(ix))
    }

    /// O(1) equivalent of [`Device::feature`].
    pub fn feature_by_id(&self, id: &str) -> Option<&Feature> {
        self.feature_ix.get(id).map(|&i| &self.device.features[i])
    }

    // ---- counts and handle iteration --------------------------------------

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.device.layers.len()
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.device.components.len()
    }

    /// Number of connections.
    pub fn connection_count(&self) -> usize {
        self.device.connections.len()
    }

    /// Number of ports across all components.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Layer handles in declaration order.
    pub fn layers(&self) -> impl ExactSizeIterator<Item = LayerIx> {
        (0..self.layer_count()).map(LayerIx::new)
    }

    /// Component handles in declaration order.
    pub fn components(&self) -> impl ExactSizeIterator<Item = CompIx> {
        (0..self.component_count()).map(CompIx::new)
    }

    /// Connection handles in declaration order.
    pub fn connections(&self) -> impl ExactSizeIterator<Item = ConnIx> {
        (0..self.connection_count()).map(ConnIx::new)
    }

    /// Port handles of `component`, in declaration order.
    pub fn ports_of(&self, component: CompIx) -> impl ExactSizeIterator<Item = PortIx> {
        let (start, end) = self.port_range[component.index()];
        (start as usize..end as usize).map(PortIx::new)
    }

    // ---- topology ----------------------------------------------------------

    /// The pre-resolved source terminal of a connection.
    pub fn source(&self, ix: ConnIx) -> Endpoint {
        self.connections[ix.index()].source
    }

    /// The pre-resolved sink terminals of a connection, in declaration order.
    pub fn sinks(&self, ix: ConnIx) -> &[Endpoint] {
        &self.connections[ix.index()].sinks
    }

    /// The layer a connection is fabricated on, if it exists.
    pub fn connection_layer(&self, ix: ConnIx) -> Option<LayerIx> {
        self.connections[ix.index()].layer
    }

    /// Connections touching `component`, in declaration order
    /// (O(1) equivalent of [`Device::connections_touching`]).
    pub fn incident(&self, component: CompIx) -> &[ConnIx] {
        &self.incidence[component.index()]
    }

    /// Connections fabricated on `layer`, in declaration order
    /// (O(1) equivalent of [`Device::connections_on`]).
    pub fn connections_on(&self, layer: LayerIx) -> &[ConnIx] {
        &self.layer_conns[layer.index()]
    }

    /// Layer handles whose layer type is `layer_type`, in stack order.
    pub fn layers_of_type(&self, layer_type: LayerType) -> impl Iterator<Item = LayerIx> + '_ {
        self.layers()
            .filter(move |&l| self.layer(l).layer_type == layer_type)
    }

    // ---- physical design ---------------------------------------------------

    /// O(1) equivalent of [`Device::placement_of`].
    pub fn placement(&self, component: CompIx) -> Option<&ComponentFeature> {
        self.placement[component.index()].and_then(|i| self.device.features[i].as_component())
    }

    /// O(1) equivalent of [`Device::route_of`].
    pub fn route(&self, connection: ConnIx) -> Option<&ConnectionFeature> {
        self.route[connection.index()].and_then(|i| self.device.features[i].as_connection())
    }

    // ---- valves ------------------------------------------------------------

    /// O(1) equivalent of [`Device::valve_on`].
    pub fn valve_on(&self, component: CompIx) -> Option<&Valve> {
        self.valve_on[component.index()].map(|i| &self.device.valves[i])
    }

    /// O(1) equivalent of [`Device::valves_controlling`].
    pub fn valves_controlling(&self, connection: ConnIx) -> impl Iterator<Item = &Valve> {
        self.valves_controlling[connection.index()]
            .iter()
            .map(|&i| &self.device.valves[i])
    }

    /// True when at least one valve pinches `connection`.
    pub fn is_valved(&self, connection: ConnIx) -> bool {
        !self.valves_controlling[connection.index()].is_empty()
    }

    /// Valve bindings with their pre-resolved handles, in declaration
    /// (canonical) order: `(valve, valve component, controlled connection)`.
    pub fn valves(&self) -> impl Iterator<Item = (&Valve, Option<CompIx>, Option<ConnIx>)> {
        self.device
            .valves
            .iter()
            .enumerate()
            .map(|(i, v)| (v, self.valve_component[i], self.valve_controls[i]))
    }

    // ---- terminal resolution ----------------------------------------------

    /// O(1) equivalent of [`Device::resolve_target`], in handle space.
    pub fn resolve_target(&self, target: &Target) -> Endpoint {
        let Some(owner) = self.comp_ix(target.component.as_str()) else {
            return Endpoint {
                component: None,
                port: None,
            };
        };
        let port = match &target.port {
            Some(label) => self.port_ix.get(&(owner, label.clone())).copied(),
            None if self.component(owner).ports.len() == 1 => self.ports_of(owner).next(),
            None => None,
        };
        Endpoint {
            component: Some(owner),
            port,
        }
    }

    /// Absolute position of a pre-resolved endpoint, when its component is
    /// placed. Port-less endpoints fall back to the placed footprint centre,
    /// mirroring [`Device::target_position`].
    pub fn endpoint_position(&self, endpoint: Endpoint) -> Option<Point> {
        let placement = self.placement(endpoint.component?)?;
        Some(match endpoint.port {
            Some(p) => placement.location + self.port(p).offset(),
            None => placement.footprint().center(),
        })
    }

    /// O(1) equivalent of [`Device::target_position`].
    pub fn target_position(&self, target: &Target) -> Option<Point> {
        let endpoint = self.resolve_target(target);
        endpoint.component?;
        self.endpoint_position(endpoint)
    }
}

impl From<Device> for CompiledDevice {
    fn from(device: Device) -> Self {
        CompiledDevice::compile(device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::Entity;
    use crate::geometry::Span;
    use crate::ids::{ComponentId, ConnectionId};
    use crate::valve::ValveType;

    fn sample() -> Device {
        Device::builder("ir_sample")
            .layer(Layer::new("f0", "flow", LayerType::Flow))
            .layer(Layer::new("c0", "control", LayerType::Control))
            .component(
                Component::new("in1", "inlet", Entity::Port, ["f0"], Span::square(200))
                    .with_port(Port::new("p", "f0", 200, 100)),
            )
            .component(
                Component::new("m1", "mixer", Entity::Mixer, ["f0"], Span::new(2000, 1000))
                    .with_port(Port::new("in", "f0", 0, 500))
                    .with_port(Port::new("out", "f0", 2000, 500)),
            )
            .component(
                Component::new("v1", "valve", Entity::Valve, ["c0"], Span::square(300))
                    .with_port(Port::new("a", "c0", 150, 0)),
            )
            .connection(Connection::new(
                "ch1",
                "inlet_to_mixer",
                "f0",
                Target::new("in1", "p"),
                [Target::new("m1", "in")],
            ))
            .connection(Connection::new(
                "ctl1",
                "actuation",
                "c0",
                Target::new("v1", "a"),
                [Target::component_only("m1")],
            ))
            .valve("v1", "ch1", ValveType::NormallyClosed)
            .build()
            .unwrap()
    }

    #[test]
    fn interning_matches_declaration_order() {
        let c = CompiledDevice::compile(sample());
        assert_eq!(c.layer_ix("f0"), Some(LayerIx::new(0)));
        assert_eq!(c.layer_ix("c0"), Some(LayerIx::new(1)));
        assert_eq!(c.comp_ix("in1"), Some(CompIx::new(0)));
        assert_eq!(c.comp_ix("m1"), Some(CompIx::new(1)));
        assert_eq!(c.comp_ix("v1"), Some(CompIx::new(2)));
        assert_eq!(c.conn_ix("ch1"), Some(ConnIx::new(0)));
        assert_eq!(c.conn_ix("ghost"), None);
        assert_eq!(c.component_count(), 3);
        assert_eq!(c.connection_count(), 2);
        assert_eq!(c.layer_count(), 2);
        assert_eq!(c.port_count(), 4);
    }

    #[test]
    fn lookups_agree_with_linear_scans() {
        let device = sample();
        let c = CompiledDevice::from_ref(&device);
        for layer in &device.layers {
            assert_eq!(c.layer_by_id(layer.id.as_str()), Some(layer));
        }
        for component in &device.components {
            assert_eq!(c.component_by_id(component.id.as_str()), Some(component));
        }
        for connection in &device.connections {
            assert_eq!(c.connection_by_id(connection.id.as_str()), Some(connection));
        }
        assert!(c.component_by_id("ghost").is_none());
        assert!(c.layer_by_id("ghost").is_none());
        assert!(c.connection_by_id("ghost").is_none());
        assert!(c.feature_by_id("ghost").is_none());
    }

    #[test]
    fn ports_flatten_with_owner_ranges() {
        let c = CompiledDevice::compile(sample());
        let m1 = c.comp_ix("m1").unwrap();
        let ports: Vec<&str> = c.ports_of(m1).map(|p| c.port(p).label.as_str()).collect();
        assert_eq!(ports, vec!["in", "out"]);
        for p in c.ports_of(m1) {
            assert_eq!(c.port_owner(p), m1);
        }
        let out = c.port_ix(m1, "out").unwrap();
        assert_eq!(c.port(out).x, 2000);
        assert!(c.port_ix(m1, "ghost").is_none());
    }

    #[test]
    fn endpoints_pre_resolve() {
        let c = CompiledDevice::compile(sample());
        let ch1 = c.conn_ix("ch1").unwrap();
        let src = c.source(ch1);
        assert_eq!(src.component, c.comp_ix("in1"));
        assert_eq!(
            src.port,
            c.port_ix(c.comp_ix("in1").unwrap(), "p"),
            "sole-port terminal resolves to the explicit label"
        );
        let sinks = c.sinks(ch1);
        assert_eq!(sinks.len(), 1);
        assert_eq!(sinks[0].component, c.comp_ix("m1"));

        // Port-less terminal on a multi-port component resolves to no port.
        let ctl1 = c.conn_ix("ctl1").unwrap();
        assert_eq!(c.sinks(ctl1)[0].port, None);
        assert_eq!(c.connection_layer(ctl1), c.layer_ix("c0"));
    }

    #[test]
    fn incidence_matches_connections_touching() {
        let device = sample();
        let c = CompiledDevice::from_ref(&device);
        for (i, component) in device.components.iter().enumerate() {
            let expected: Vec<&str> = device
                .connections_touching(&component.id)
                .map(|conn| conn.id.as_str())
                .collect();
            let got: Vec<&str> = c
                .incident(CompIx::new(i))
                .iter()
                .map(|&ix| c.connection(ix).id.as_str())
                .collect();
            assert_eq!(got, expected, "incidence mismatch for {}", component.id);
        }
    }

    #[test]
    fn layer_partitions() {
        let c = CompiledDevice::compile(sample());
        let f0 = c.layer_ix("f0").unwrap();
        let c0 = c.layer_ix("c0").unwrap();
        assert_eq!(c.connections_on(f0), &[c.conn_ix("ch1").unwrap()]);
        assert_eq!(c.connections_on(c0), &[c.conn_ix("ctl1").unwrap()]);
        let flow: Vec<LayerIx> = c.layers_of_type(LayerType::Flow).collect();
        assert_eq!(flow, vec![f0]);
    }

    #[test]
    fn valve_tables() {
        let c = CompiledDevice::compile(sample());
        let v1 = c.comp_ix("v1").unwrap();
        let ch1 = c.conn_ix("ch1").unwrap();
        let ctl1 = c.conn_ix("ctl1").unwrap();
        assert_eq!(c.valve_on(v1).unwrap().controls, "ch1");
        assert!(c.valve_on(c.comp_ix("m1").unwrap()).is_none());
        assert_eq!(c.valves_controlling(ch1).count(), 1);
        assert!(c.is_valved(ch1));
        assert!(!c.is_valved(ctl1));
        let resolved: Vec<_> = c.valves().collect();
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].1, Some(v1));
        assert_eq!(resolved[0].2, Some(ch1));
    }

    #[test]
    fn positions_agree_with_device() {
        let mut device = sample();
        device.features.push(
            ComponentFeature::new(
                "pf_in1",
                "in1",
                "f0",
                Point::new(0, 0),
                Span::square(200),
                50,
            )
            .into(),
        );
        device.features.push(
            ComponentFeature::new(
                "pf_m1",
                "m1",
                "f0",
                Point::new(1000, 0),
                Span::new(2000, 1000),
                50,
            )
            .into(),
        );
        let c = CompiledDevice::from_ref(&device);
        let m1 = c.comp_ix("m1").unwrap();
        assert_eq!(c.placement(m1).unwrap().location, Point::new(1000, 0));
        assert!(c.placement(c.comp_ix("v1").unwrap()).is_none());
        assert!(c.route(c.conn_ix("ch1").unwrap()).is_none());

        for connection in &device.connections {
            for target in connection.terminals() {
                assert_eq!(
                    c.target_position(target),
                    device.target_position(target),
                    "position mismatch for terminal {target}"
                );
            }
        }
        // Endpoint positions agree too.
        let ch1 = c.conn_ix("ch1").unwrap();
        assert_eq!(
            c.endpoint_position(c.source(ch1)),
            device.target_position(&device.connections[0].source)
        );
        assert_eq!(c.feature_by_id("pf_m1"), device.feature("pf_m1"));
    }

    #[test]
    fn dangling_references_compile_to_none() {
        let mut device = sample();
        device.connections.push(Connection::new(
            "bad",
            "bad",
            "ghost_layer",
            Target::new("ghost", "p"),
            [Target::new("m1", "ghost_port")],
        ));
        device
            .valves
            .push(Valve::new("ghost", "bad2", ValveType::NormallyOpen));
        let c = CompiledDevice::from_ref(&device);
        let bad = c.conn_ix("bad").unwrap();
        assert_eq!(c.source(bad).component, None);
        assert_eq!(c.connection_layer(bad), None);
        let sink = c.sinks(bad)[0];
        assert_eq!(sink.component, c.comp_ix("m1"));
        assert_eq!(sink.port, None, "unknown label resolves to no port");
        let (_, vc, vk) = c.valves().nth(1).unwrap();
        assert_eq!(vc, None);
        assert_eq!(vk, None);
        assert_eq!(c.target_position(&Target::new("ghost", "p")), None);
    }

    #[test]
    fn duplicate_ids_bind_first_occurrence() {
        let mut device = Device::new("dups");
        device.layers.push(Layer::new("l", "a", LayerType::Flow));
        device.components.push(Component::new(
            "x",
            "first",
            Entity::Node,
            ["l"],
            Span::square(1),
        ));
        device.components.push(Component::new(
            "x",
            "second",
            Entity::Node,
            ["l"],
            Span::square(2),
        ));
        let c = CompiledDevice::from_ref(&device);
        assert_eq!(c.comp_ix("x"), Some(CompIx::new(0)));
        assert_eq!(
            c.component_by_id("x").unwrap().name,
            device.component("x").unwrap().name,
            "compiled lookup matches the linear scan's first-wins rule"
        );
        // Both occurrences are still reachable by handle.
        assert_eq!(c.component(CompIx::new(1)).name, "second");
    }

    #[test]
    fn shared_view_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let shared = CompiledDevice::compile(sample()).into_shared();
        assert_send_sync(&shared);
        let again = Arc::clone(&shared);
        assert_eq!(again.component_count(), 3);
    }

    #[test]
    fn into_device_round_trips() {
        let device = sample();
        let c = CompiledDevice::from_ref(&device);
        assert_eq!(c.device(), &device);
        assert_eq!(CompiledDevice::from(device.clone()).into_device(), device);
    }

    #[test]
    fn handle_conversions() {
        let ix = CompIx::new(7);
        assert_eq!(ix.index(), 7);
        assert_eq!(usize::from(ix), 7);
        let _ = (ComponentId::new("x"), ConnectionId::new("y")); // keep imports honest
    }
}
