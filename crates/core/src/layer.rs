//! Device layers.
//!
//! Continuous-flow LoC devices are fabricated as a stack of bonded layers.
//! The *flow* layer carries reagents; *control* layers carry the pressure
//! lines that actuate membrane valves; *integration* layers host vertical
//! interconnect in 3D devices.

use crate::ids::LayerId;
use crate::params::Params;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The functional role of a [`Layer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "UPPERCASE")]
pub enum LayerType {
    /// Carries reagent flow.
    Flow,
    /// Carries valve-actuation pressure lines.
    Control,
    /// Hosts inter-layer plumbing in 3D devices.
    Integration,
}

impl LayerType {
    /// The canonical uppercase name used in ParchMint JSON.
    pub fn name(self) -> &'static str {
        match self {
            LayerType::Flow => "FLOW",
            LayerType::Control => "CONTROL",
            LayerType::Integration => "INTEGRATION",
        }
    }

    /// All layer types.
    pub const ALL: &'static [LayerType] =
        &[LayerType::Flow, LayerType::Control, LayerType::Integration];
}

impl fmt::Display for LayerType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when a layer-type string is not recognised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLayerTypeError(String);

impl fmt::Display for ParseLayerTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown layer type `{}` (expected FLOW, CONTROL, or INTEGRATION)",
            self.0
        )
    }
}

impl std::error::Error for ParseLayerTypeError {}

impl FromStr for LayerType {
    type Err = ParseLayerTypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_uppercase().as_str() {
            "FLOW" => Ok(LayerType::Flow),
            "CONTROL" => Ok(LayerType::Control),
            "INTEGRATION" => Ok(LayerType::Integration),
            _ => Err(ParseLayerTypeError(s.to_owned())),
        }
    }
}

/// One fabrication layer of a device.
///
/// # Examples
///
/// ```
/// use parchmint::{Layer, LayerType};
///
/// let flow = Layer::new("f0", "flow", LayerType::Flow);
/// assert_eq!(flow.id.as_str(), "f0");
/// assert!(flow.is_flow());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Unique identifier.
    pub id: LayerId,
    /// Human-readable name.
    pub name: String,
    /// Functional role.
    #[serde(rename = "type")]
    pub layer_type: LayerType,
    /// Open parameters (e.g. layer depth, material).
    #[serde(default, skip_serializing_if = "Params::is_empty")]
    pub params: Params,
}

impl Layer {
    /// Creates a layer with empty parameters.
    pub fn new(id: impl Into<LayerId>, name: impl Into<String>, layer_type: LayerType) -> Self {
        Layer {
            id: id.into(),
            name: name.into(),
            layer_type,
            params: Params::new(),
        }
    }

    /// Builder-style parameter attachment.
    #[must_use]
    pub fn with_params(mut self, params: Params) -> Self {
        self.params = params;
        self
    }

    /// True for flow layers.
    pub fn is_flow(&self) -> bool {
        self.layer_type == LayerType::Flow
    }

    /// True for control layers.
    pub fn is_control(&self) -> bool {
        self.layer_type == LayerType::Control
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {})", self.id, self.name, self.layer_type)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_type_parse_round_trip() {
        for lt in LayerType::ALL {
            assert_eq!(lt.name().parse::<LayerType>().unwrap(), *lt);
        }
        assert_eq!("flow".parse::<LayerType>().unwrap(), LayerType::Flow);
        assert_eq!(
            " Control ".parse::<LayerType>().unwrap(),
            LayerType::Control
        );
    }

    #[test]
    fn layer_type_parse_rejects_unknown() {
        let err = "MEMBRANE".parse::<LayerType>().unwrap_err();
        assert!(err.to_string().contains("MEMBRANE"));
    }

    #[test]
    fn layer_serde_shape() {
        let layer = Layer::new("c0", "control", LayerType::Control);
        let json = serde_json::to_value(&layer).unwrap();
        assert_eq!(json["id"], "c0");
        assert_eq!(json["type"], "CONTROL");
        assert!(json.get("params").is_none(), "empty params must be omitted");
        let back: Layer = serde_json::from_value(json).unwrap();
        assert_eq!(back, layer);
    }

    #[test]
    fn layer_params_round_trip() {
        let layer =
            Layer::new("f0", "flow", LayerType::Flow).with_params(Params::new().with("depth", 45));
        let json = serde_json::to_string(&layer).unwrap();
        let back: Layer = serde_json::from_str(&json).unwrap();
        assert_eq!(back.params.get_i64("depth"), Some(45));
    }

    #[test]
    fn predicates_and_display() {
        let layer = Layer::new("f0", "flow", LayerType::Flow);
        assert!(layer.is_flow());
        assert!(!layer.is_control());
        assert_eq!(layer.to_string(), "f0 (flow, FLOW)");
    }
}
