//! Format versioning.
//!
//! ParchMint evolved in three published revisions: 1.0 (netlist only),
//! 1.1 (physical-design `features`), and 1.2 (valve maps). The version field
//! gates which sections a serializer emits and which sections a strict
//! parser accepts.

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::str::FromStr;

/// A ParchMint format revision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Version {
    /// 1.0 — components, connections, layers, params.
    V1_0,
    /// 1.1 — adds physical-design `features`.
    V1_1,
    /// 1.2 — adds `valveMap` / `valveTypeMap`. The current revision.
    #[default]
    V1_2,
}

impl Version {
    /// The newest revision this crate understands.
    pub const CURRENT: Version = Version::V1_2;

    /// The serialized version string, e.g. `"1.2"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Version::V1_0 => "1.0",
            Version::V1_1 => "1.1",
            Version::V1_2 => "1.2",
        }
    }

    /// True when this revision carries a `features` array.
    pub fn supports_features(self) -> bool {
        self >= Version::V1_1
    }

    /// True when this revision carries valve maps.
    pub fn supports_valves(self) -> bool {
        self >= Version::V1_2
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when a version string is not a known revision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVersionError(String);

impl fmt::Display for ParseVersionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown ParchMint version `{}` (known: 1.0, 1.1, 1.2)",
            self.0
        )
    }
}

impl std::error::Error for ParseVersionError {}

impl FromStr for Version {
    type Err = ParseVersionError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "1" | "1.0" => Ok(Version::V1_0),
            "1.1" => Ok(Version::V1_1),
            "1.2" => Ok(Version::V1_2),
            other => Err(ParseVersionError(other.to_owned())),
        }
    }
}

impl Serialize for Version {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> Deserialize<'de> for Version {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(D::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_tracks_capability() {
        assert!(Version::V1_0 < Version::V1_1);
        assert!(Version::V1_1 < Version::V1_2);
        assert!(!Version::V1_0.supports_features());
        assert!(Version::V1_1.supports_features());
        assert!(!Version::V1_1.supports_valves());
        assert!(Version::V1_2.supports_valves());
    }

    #[test]
    fn parse_round_trip() {
        for v in [Version::V1_0, Version::V1_1, Version::V1_2] {
            assert_eq!(v.as_str().parse::<Version>().unwrap(), v);
        }
        assert_eq!("1".parse::<Version>().unwrap(), Version::V1_0);
        assert!("2.0".parse::<Version>().is_err());
    }

    #[test]
    fn default_is_current() {
        assert_eq!(Version::default(), Version::CURRENT);
        assert_eq!(Version::CURRENT, Version::V1_2);
    }

    #[test]
    fn serde_as_string() {
        assert_eq!(serde_json::to_string(&Version::V1_2).unwrap(), r#""1.2""#);
        let v: Version = serde_json::from_str(r#""1.1""#).unwrap();
        assert_eq!(v, Version::V1_1);
        assert!(serde_json::from_str::<Version>(r#""3.7""#).is_err());
    }
}
