//! Error types for parsing and constructing ParchMint models.

use std::fmt;

/// Error produced while reading, writing, or assembling a ParchMint device.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// JSON syntax or type-shape error from the underlying parser.
    Json(serde_json::Error),
    /// The JSON was well-formed but violates a model invariant
    /// (for example, a `valveTypeMap` entry with no `valveMap` partner).
    InvalidModel(String),
    /// A builder was asked to reference an identifier it has not seen.
    UnknownReference {
        /// The kind of object being referenced ("layer", "component", …).
        kind: &'static str,
        /// The missing identifier.
        id: String,
    },
    /// A builder was given the same identifier twice.
    DuplicateId {
        /// The kind of object being defined.
        kind: &'static str,
        /// The duplicated identifier.
        id: String,
    },
}

impl Error {
    /// Convenience constructor for [`Error::InvalidModel`].
    pub fn invalid_model(message: impl Into<String>) -> Self {
        Error::InvalidModel(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Json(e) => write!(f, "JSON error: {e}"),
            Error::InvalidModel(msg) => write!(f, "invalid ParchMint model: {msg}"),
            Error::UnknownReference { kind, id } => {
                write!(f, "reference to unknown {kind} `{id}`")
            }
            Error::DuplicateId { kind, id } => write!(f, "duplicate {kind} id `{id}`"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for Error {
    fn from(e: serde_json::Error) -> Self {
        Error::Json(e)
    }
}

/// Result alias for this crate's fallible operations.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_variants() {
        let e = Error::invalid_model("orphan valve");
        assert_eq!(e.to_string(), "invalid ParchMint model: orphan valve");
        let e = Error::UnknownReference {
            kind: "layer",
            id: "f9".into(),
        };
        assert_eq!(e.to_string(), "reference to unknown layer `f9`");
        let e = Error::DuplicateId {
            kind: "component",
            id: "m1".into(),
        };
        assert_eq!(e.to_string(), "duplicate component id `m1`");
    }

    #[test]
    fn json_error_has_source() {
        let json_err = serde_json::from_str::<serde_json::Value>("{").unwrap_err();
        let e = Error::from(json_err);
        assert!(e.source().is_some());
        assert!(e.to_string().starts_with("JSON error"));
    }

    #[test]
    fn invalid_model_has_no_source() {
        assert!(Error::invalid_model("x").source().is_none());
    }
}
