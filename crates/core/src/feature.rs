//! Physical-design features.
//!
//! A ParchMint netlist may exist at two fidelities: *pre-layout* (components
//! and connections only) and *post-layout*, where `features` pin every
//! component to an absolute location and give every connection a routed
//! polyline with a width and depth. Features are what a fabrication backend
//! consumes.

use crate::geometry::{Point, Rect, Span};
use crate::ids::{ComponentId, ConnectionId, FeatureId, LayerId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Placement of one component: absolute location of its lower-left corner.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ComponentFeature {
    /// Unique feature identifier.
    pub id: FeatureId,
    /// Human-readable name.
    pub name: String,
    /// The component being placed.
    pub component: ComponentId,
    /// The layer this feature is drawn on.
    pub layer: LayerId,
    /// Absolute position of the component origin, in µm.
    pub location: Point,
    /// Placed extents (normally equal to the component's span, but kept here
    /// so a feature file is self-contained), serialized as `x-span`/`y-span`.
    #[serde(flatten)]
    pub span: Span,
    /// Feature depth (etch/mold), in µm.
    pub depth: i64,
}

impl ComponentFeature {
    /// Creates a placement feature.
    pub fn new(
        id: impl Into<FeatureId>,
        component: impl Into<ComponentId>,
        layer: impl Into<LayerId>,
        location: Point,
        span: Span,
        depth: i64,
    ) -> Self {
        let component = component.into();
        ComponentFeature {
            id: id.into(),
            name: format!("place_{component}"),
            component,
            layer: layer.into(),
            location,
            span,
            depth,
        }
    }

    /// The placed footprint rectangle.
    pub fn footprint(&self) -> Rect {
        Rect::new(self.location, self.span)
    }
}

/// Routing of one connection: a rectilinear polyline with width and depth.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConnectionFeature {
    /// Unique feature identifier.
    pub id: FeatureId,
    /// Human-readable name.
    pub name: String,
    /// The connection being routed.
    pub connection: ConnectionId,
    /// The layer this feature is drawn on.
    pub layer: LayerId,
    /// Channel width, in µm.
    pub width: i64,
    /// Channel depth, in µm.
    pub depth: i64,
    /// Polyline vertices from source to sink, in absolute µm.
    pub waypoints: Vec<Point>,
}

impl ConnectionFeature {
    /// Creates a routing feature.
    pub fn new(
        id: impl Into<FeatureId>,
        connection: impl Into<ConnectionId>,
        layer: impl Into<LayerId>,
        width: i64,
        depth: i64,
        waypoints: impl IntoIterator<Item = Point>,
    ) -> Self {
        let connection = connection.into();
        ConnectionFeature {
            id: id.into(),
            name: format!("route_{connection}"),
            connection,
            layer: layer.into(),
            width,
            depth,
            waypoints: waypoints.into_iter().collect(),
        }
    }

    /// Total polyline length (sum of Manhattan segment lengths), in µm.
    pub fn length(&self) -> i64 {
        self.waypoints
            .windows(2)
            .map(|w| w[0].manhattan_distance(w[1]))
            .sum()
    }

    /// Number of direction changes along the polyline.
    pub fn bends(&self) -> usize {
        if self.waypoints.len() < 3 {
            return 0;
        }
        self.waypoints
            .windows(3)
            .filter(|w| {
                let d1 = w[1] - w[0];
                let d2 = w[2] - w[1];
                // A bend is a change between horizontal and vertical travel.
                (d1.x == 0) != (d2.x == 0)
            })
            .count()
    }

    /// True when every segment is axis-aligned (rectilinear routing).
    pub fn is_rectilinear(&self) -> bool {
        self.waypoints
            .windows(2)
            .all(|w| w[0].x == w[1].x || w[0].y == w[1].y)
    }

    /// Bounding box of the polyline, ignoring channel width.
    pub fn bounding_box(&self) -> Option<Rect> {
        let first = *self.waypoints.first()?;
        let (min, max) = self
            .waypoints
            .iter()
            .fold((first, first), |(lo, hi), &p| (lo.min(p), hi.max(p)));
        Some(Rect::from_corners(min, max))
    }
}

/// A physical-design feature: a component placement or a connection route.
///
/// Serialized with an explicit `"type"` tag so a mixed `features` array is
/// self-describing:
///
/// ```json
/// {"type": "component", "id": "f1", "component": "m1", ...}
/// {"type": "connection", "id": "f2", "connection": "ch1", ...}
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "lowercase")]
pub enum Feature {
    /// A component placement.
    Component(ComponentFeature),
    /// A connection route.
    Connection(ConnectionFeature),
}

impl Feature {
    /// The feature's identifier.
    pub fn id(&self) -> &FeatureId {
        match self {
            Feature::Component(f) => &f.id,
            Feature::Connection(f) => &f.id,
        }
    }

    /// The layer the feature is drawn on.
    pub fn layer(&self) -> &LayerId {
        match self {
            Feature::Component(f) => &f.layer,
            Feature::Connection(f) => &f.layer,
        }
    }

    /// Returns the placement when this is a component feature.
    pub fn as_component(&self) -> Option<&ComponentFeature> {
        match self {
            Feature::Component(f) => Some(f),
            Feature::Connection(_) => None,
        }
    }

    /// Returns the route when this is a connection feature.
    pub fn as_connection(&self) -> Option<&ConnectionFeature> {
        match self {
            Feature::Connection(f) => Some(f),
            Feature::Component(_) => None,
        }
    }
}

impl From<ComponentFeature> for Feature {
    fn from(f: ComponentFeature) -> Self {
        Feature::Component(f)
    }
}

impl From<ConnectionFeature> for Feature {
    fn from(f: ConnectionFeature) -> Self {
        Feature::Connection(f)
    }
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Feature::Component(c) => {
                write!(f, "feature {}: {} at {}", c.id, c.component, c.location)
            }
            Feature::Connection(c) => write!(
                f,
                "feature {}: {} via {} waypoints",
                c.id,
                c.connection,
                c.waypoints.len()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route() -> ConnectionFeature {
        ConnectionFeature::new(
            "f2",
            "ch1",
            "flow",
            400,
            50,
            [
                Point::new(0, 0),
                Point::new(100, 0),
                Point::new(100, 50),
                Point::new(200, 50),
            ],
        )
    }

    #[test]
    fn length_and_bends() {
        let r = route();
        assert_eq!(r.length(), 100 + 50 + 100);
        assert_eq!(r.bends(), 2);
        assert!(r.is_rectilinear());
    }

    #[test]
    fn straight_line_has_no_bends() {
        let r = ConnectionFeature::new("f", "c", "l", 1, 1, [Point::new(0, 0), Point::new(5, 0)]);
        assert_eq!(r.bends(), 0);
        let single = ConnectionFeature::new("f", "c", "l", 1, 1, [Point::new(0, 0)]);
        assert_eq!(single.bends(), 0);
        assert_eq!(single.length(), 0);
    }

    #[test]
    fn diagonal_is_not_rectilinear() {
        let r = ConnectionFeature::new("f", "c", "l", 1, 1, [Point::new(0, 0), Point::new(5, 5)]);
        assert!(!r.is_rectilinear());
    }

    #[test]
    fn bounding_box() {
        let r = route();
        let bb = r.bounding_box().unwrap();
        assert_eq!(bb.min, Point::new(0, 0));
        assert_eq!(bb.max(), Point::new(200, 50));
        let empty = ConnectionFeature::new("f", "c", "l", 1, 1, std::iter::empty());
        assert!(empty.bounding_box().is_none());
    }

    #[test]
    fn component_feature_footprint() {
        let f = ComponentFeature::new(
            "f1",
            "m1",
            "flow",
            Point::new(100, 200),
            Span::new(50, 60),
            45,
        );
        assert_eq!(f.footprint().max(), Point::new(150, 260));
        assert_eq!(f.name, "place_m1");
    }

    #[test]
    fn tagged_serde_round_trip() {
        let features: Vec<Feature> = vec![
            ComponentFeature::new("f1", "m1", "flow", Point::new(1, 2), Span::new(3, 4), 5).into(),
            route().into(),
        ];
        let json = serde_json::to_string(&features).unwrap();
        let back: Vec<Feature> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, features);
        let v = serde_json::to_value(&features).unwrap();
        assert_eq!(v[0]["type"], "component");
        assert_eq!(v[1]["type"], "connection");
        assert_eq!(
            v[0]["x-span"], 3,
            "span must flatten into the feature object"
        );
    }

    #[test]
    fn accessors() {
        let f: Feature = route().into();
        assert_eq!(f.id().as_str(), "f2");
        assert_eq!(f.layer().as_str(), "flow");
        assert!(f.as_connection().is_some());
        assert!(f.as_component().is_none());
        assert!(f.to_string().contains("4 waypoints"));
    }
}
