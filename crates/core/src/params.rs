//! Open key/value parameter bags.
//!
//! Every ParchMint object may carry a `params` object holding
//! manufacturer- or tool-specific values (channel widths, mixer turn counts,
//! chamber depths, …). The format deliberately leaves this object open;
//! [`Params`] models it as an ordered JSON map with typed accessors for the
//! conventional keys.

use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::fmt;

/// Conventional parameter keys used across the benchmark suite.
pub mod keys {
    /// Device/component extent along x, in µm.
    pub const X_SPAN: &str = "x-span";
    /// Device/component extent along y, in µm.
    pub const Y_SPAN: &str = "y-span";
    /// Channel or feature width, in µm.
    pub const WIDTH: &str = "width";
    /// Channel or feature depth (etch/mold depth), in µm.
    pub const DEPTH: &str = "depth";
    /// Absolute x position, in µm.
    pub const POSITION_X: &str = "position-x";
    /// Absolute y position, in µm.
    pub const POSITION_Y: &str = "position-y";
    /// Number of serpentine bends in a mixer.
    pub const NUM_BENDS: &str = "numBends";
    /// Rotary mixer radius, in µm.
    pub const RADIUS: &str = "radius";
    /// Number of chamber/trap repetitions.
    pub const CHAMBER_COUNT: &str = "chamberCount";
    /// Tree fan-out (leaves).
    pub const LEAVES: &str = "leaves";
    /// Mux addressable output count.
    pub const OUTPUTS: &str = "outputs";
}

/// An ordered `params` bag: string keys mapping to arbitrary JSON values.
///
/// # Examples
///
/// ```
/// use parchmint::Params;
///
/// let mut p = Params::new();
/// p.set("width", 300);
/// p.set("label", "serpentine");
/// assert_eq!(p.get_i64("width"), Some(300));
/// assert_eq!(p.get_str("label"), Some("serpentine"));
/// assert_eq!(p.get_i64("missing"), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Params(serde_json::Map<String, Value>);

impl Params {
    /// Creates an empty parameter bag.
    pub fn new() -> Self {
        Params::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the bag holds no entries.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns the raw JSON value stored under `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.0.get(key)
    }

    /// True when `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.0.contains_key(key)
    }

    /// Inserts `value` under `key`, returning any previous value.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        self.0.insert(key.into(), value.into())
    }

    /// Removes `key`, returning its value when present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.0.remove(key)
    }

    /// Integer accessor; also accepts exact floats such as `3.0`.
    pub fn get_i64(&self, key: &str) -> Option<i64> {
        match self.0.get(key)? {
            Value::Number(n) => n
                .as_i64()
                .or_else(|| n.as_f64().filter(|f| f.fract() == 0.0).map(|f| f as i64)),
            _ => None,
        }
    }

    /// Floating-point accessor.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.0.get(key)?.as_f64()
    }

    /// String accessor.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.0.get(key)?.as_str()
    }

    /// Boolean accessor.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        self.0.get(key)?.as_bool()
    }

    /// Iterates over `(key, value)` pairs in insertion-independent
    /// (alphabetical) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates over the keys.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.0.keys().map(String::as_str)
    }

    /// Borrows the underlying JSON map.
    pub fn as_map(&self) -> &serde_json::Map<String, Value> {
        &self.0
    }

    /// Builder-style insertion, for fluent construction.
    ///
    /// ```
    /// use parchmint::Params;
    /// let p = Params::new().with("width", 400).with("depth", 50);
    /// assert_eq!(p.len(), 2);
    /// ```
    #[must_use]
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.set(key, value);
        self
    }
}

impl fmt::Display for Params {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rendered = serde_json::to_string(&self.0).map_err(|_| fmt::Error)?;
        f.write_str(&rendered)
    }
}

impl FromIterator<(String, Value)> for Params {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Params(iter.into_iter().collect())
    }
}

impl Extend<(String, Value)> for Params {
    fn extend<T: IntoIterator<Item = (String, Value)>>(&mut self, iter: T) {
        self.0.extend(iter)
    }
}

impl From<serde_json::Map<String, Value>> for Params {
    fn from(map: serde_json::Map<String, Value>) -> Self {
        Params(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn typed_accessors() {
        let mut p = Params::new();
        p.set("int", 42);
        p.set("float", 2.5);
        p.set("exact_float", 3.0);
        p.set("text", "hello");
        p.set("flag", true);

        assert_eq!(p.get_i64("int"), Some(42));
        assert_eq!(p.get_i64("exact_float"), Some(3));
        assert_eq!(p.get_i64("float"), None);
        assert_eq!(p.get_f64("float"), Some(2.5));
        assert_eq!(p.get_f64("int"), Some(42.0));
        assert_eq!(p.get_str("text"), Some("hello"));
        assert_eq!(p.get_str("int"), None);
        assert_eq!(p.get_bool("flag"), Some(true));
        assert_eq!(p.get_bool("text"), None);
    }

    #[test]
    fn set_remove_contains() {
        let mut p = Params::new();
        assert!(p.is_empty());
        assert_eq!(p.set("k", 1), None);
        assert_eq!(p.set("k", 2), Some(json!(1)));
        assert!(p.contains_key("k"));
        assert_eq!(p.remove("k"), Some(json!(2)));
        assert!(!p.contains_key("k"));
        assert_eq!(p.remove("k"), None);
    }

    #[test]
    fn fluent_builder_and_len() {
        let p = Params::new().with("a", 1).with("b", "two");
        assert_eq!(p.len(), 2);
        let keys: Vec<&str> = p.keys().collect();
        assert_eq!(keys, vec!["a", "b"]);
    }

    #[test]
    fn serde_transparent_round_trip() {
        let p = Params::new().with("x-span", 5000).with("y-span", 3000);
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(json, r#"{"x-span":5000,"y-span":3000}"#);
        let back: Params = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut p: Params = vec![("a".to_string(), json!(1))].into_iter().collect();
        p.extend(vec![("b".to_string(), json!(2))]);
        assert_eq!(p.get_i64("a"), Some(1));
        assert_eq!(p.get_i64("b"), Some(2));
    }

    #[test]
    fn display_is_json() {
        let p = Params::new().with("w", 10);
        assert_eq!(p.to_string(), r#"{"w":10}"#);
    }

    #[test]
    fn nested_values_retrievable_raw() {
        let mut p = Params::new();
        p.set("nested", json!({"inner": [1, 2, 3]}));
        let v = p.get("nested").unwrap();
        assert_eq!(v["inner"][2], json!(3));
    }
}
