//! JSON Schema emission for the ParchMint interchange format.
//!
//! An interchange standard needs a machine-readable contract that tools in
//! other languages can validate against; the upstream ParchMint project
//! ships one, and so does this crate: [`json_schema`] produces a JSON
//! Schema (draft-07 dialect) describing the on-the-wire shape this crate
//! reads and writes, generated from the same constants the serializer uses
//! so it cannot drift silently.

use crate::entity::Entity;
use crate::version::Version;
use serde_json::{json, Value};

/// The draft-07 JSON Schema for a ParchMint device document.
///
/// # Examples
///
/// ```
/// let schema = parchmint::schema::json_schema();
/// assert_eq!(schema["title"], "ParchMint Device");
/// assert!(schema["definitions"]["component"].is_object());
/// ```
pub fn json_schema() -> Value {
    let id_pattern = ".+";
    let known_versions: Vec<&str> = [Version::V1_0, Version::V1_1, Version::V1_2]
        .iter()
        .map(|v| v.as_str())
        .collect();
    let standard_entities: Vec<&str> = Entity::STANDARD.iter().map(|e| e.name()).collect();

    json!({
        "$schema": "http://json-schema.org/draft-07/schema#",
        "title": "ParchMint Device",
        "description": "A continuous-flow microfluidic device netlist, optionally with physical design (features, >=1.1) and valve bindings (>=1.2). All coordinates in integer micrometres.",
        "type": "object",
        "required": ["name"],
        "properties": {
            "name": { "type": "string" },
            "version": { "enum": known_versions },
            "layers": { "type": "array", "items": { "$ref": "#/definitions/layer" } },
            "components": { "type": "array", "items": { "$ref": "#/definitions/component" } },
            "connections": { "type": "array", "items": { "$ref": "#/definitions/connection" } },
            "features": { "type": "array", "items": { "$ref": "#/definitions/feature" } },
            "valveMap": {
                "type": "object",
                "description": "valve component id -> controlled connection id",
                "additionalProperties": { "type": "string" }
            },
            "valveTypeMap": {
                "type": "object",
                "description": "valve component id -> rest polarity",
                "additionalProperties": { "enum": ["NORMALLY_OPEN", "NORMALLY_CLOSED"] }
            },
            "params": { "$ref": "#/definitions/params" }
        },
        "definitions": {
            "params": {
                "type": "object",
                "description": "Open key/value bag; conventional keys include x-span, y-span, width, depth."
            },
            "layer": {
                "type": "object",
                "required": ["id", "name", "type"],
                "properties": {
                    "id": { "type": "string", "pattern": id_pattern },
                    "name": { "type": "string" },
                    "type": { "enum": ["FLOW", "CONTROL", "INTEGRATION"] },
                    "params": { "$ref": "#/definitions/params" }
                }
            },
            "port": {
                "type": "object",
                "required": ["label", "layer", "x", "y"],
                "properties": {
                    "label": { "type": "string" },
                    "layer": { "type": "string" },
                    "x": { "type": "integer" },
                    "y": { "type": "integer" }
                }
            },
            "component": {
                "type": "object",
                "required": ["id", "name", "entity", "layers", "x-span", "y-span"],
                "properties": {
                    "id": { "type": "string", "pattern": id_pattern },
                    "name": { "type": "string" },
                    "entity": {
                        "type": "string",
                        "description": "A MINT entity; standard vocabulary below, custom names allowed.",
                        "examples": standard_entities
                    },
                    "layers": { "type": "array", "items": { "type": "string" }, "minItems": 1 },
                    "x-span": { "type": "integer", "minimum": 0 },
                    "y-span": { "type": "integer", "minimum": 0 },
                    "ports": { "type": "array", "items": { "$ref": "#/definitions/port" } },
                    "params": { "$ref": "#/definitions/params" }
                }
            },
            "target": {
                "type": "object",
                "required": ["component"],
                "properties": {
                    "component": { "type": "string" },
                    "port": { "type": "string" }
                }
            },
            "connection": {
                "type": "object",
                "required": ["id", "name", "layer", "source", "sinks"],
                "properties": {
                    "id": { "type": "string", "pattern": id_pattern },
                    "name": { "type": "string" },
                    "layer": { "type": "string" },
                    "source": { "$ref": "#/definitions/target" },
                    "sinks": {
                        "type": "array",
                        "items": { "$ref": "#/definitions/target" },
                        "minItems": 1
                    },
                    "params": { "$ref": "#/definitions/params" }
                }
            },
            "feature": {
                "oneOf": [
                    { "$ref": "#/definitions/componentFeature" },
                    { "$ref": "#/definitions/connectionFeature" }
                ]
            },
            "componentFeature": {
                "type": "object",
                "required": ["type", "id", "name", "component", "layer", "location", "x-span", "y-span", "depth"],
                "properties": {
                    "type": { "const": "component" },
                    "id": { "type": "string" },
                    "name": { "type": "string" },
                    "component": { "type": "string" },
                    "layer": { "type": "string" },
                    "location": {
                        "type": "object",
                        "required": ["x", "y"],
                        "properties": {
                            "x": { "type": "integer" },
                            "y": { "type": "integer" }
                        }
                    },
                    "x-span": { "type": "integer", "minimum": 0 },
                    "y-span": { "type": "integer", "minimum": 0 },
                    "depth": { "type": "integer" }
                }
            },
            "connectionFeature": {
                "type": "object",
                "required": ["type", "id", "name", "connection", "layer", "width", "depth", "waypoints"],
                "properties": {
                    "type": { "const": "connection" },
                    "id": { "type": "string" },
                    "name": { "type": "string" },
                    "connection": { "type": "string" },
                    "layer": { "type": "string" },
                    "width": { "type": "integer", "minimum": 0 },
                    "depth": { "type": "integer", "minimum": 0 },
                    "waypoints": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["x", "y"],
                            "properties": {
                                "x": { "type": "integer" },
                                "y": { "type": "integer" }
                            }
                        }
                    }
                }
            }
        }
    })
}

/// Structural spot-check of a serialized device against the schema's
/// required-property lists.
///
/// Not a full JSON Schema validator (use any off-the-shelf validator with
/// [`json_schema`] for that); this covers the checks a Rust consumer wants
/// before handing a document to [`Device::from_json`](crate::Device::from_json):
/// required top-level/section keys are present with the right JSON types.
/// Returns the list of violations, empty when the document is shaped right.
pub fn check_document(document: &Value) -> Vec<String> {
    let mut violations = Vec::new();
    let Some(object) = document.as_object() else {
        return vec!["document is not a JSON object".to_string()];
    };
    if !object.get("name").map(Value::is_string).unwrap_or(false) {
        violations.push("missing string property `name`".to_string());
    }
    for (section, required) in [
        ("layers", vec!["id", "name", "type"]),
        (
            "components",
            vec!["id", "name", "entity", "layers", "x-span", "y-span"],
        ),
        (
            "connections",
            vec!["id", "name", "layer", "source", "sinks"],
        ),
    ] {
        let Some(value) = object.get(section) else {
            continue; // sections are optional
        };
        let Some(items) = value.as_array() else {
            violations.push(format!("`{section}` must be an array"));
            continue;
        };
        for (i, item) in items.iter().enumerate() {
            for key in &required {
                if item.get(key).is_none() {
                    violations.push(format!("{section}[{i}] missing `{key}`"));
                }
            }
        }
    }
    for map_key in ["valveMap", "valveTypeMap"] {
        if let Some(value) = object.get(map_key) {
            if !value.is_object() {
                violations.push(format!("`{map_key}` must be an object"));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_is_well_formed() {
        let schema = json_schema();
        assert_eq!(schema["$schema"], "http://json-schema.org/draft-07/schema#");
        for definition in [
            "layer",
            "component",
            "port",
            "target",
            "connection",
            "feature",
            "componentFeature",
            "connectionFeature",
            "params",
        ] {
            assert!(
                schema["definitions"][definition].is_object(),
                "missing definition `{definition}`"
            );
        }
        // Versions and polarity enums come from the real constants.
        assert_eq!(schema["properties"]["version"]["enum"][2], "1.2");
        assert_eq!(
            schema["properties"]["valveTypeMap"]["additionalProperties"]["enum"][1],
            "NORMALLY_CLOSED"
        );
    }

    #[test]
    fn schema_lists_standard_entities() {
        let schema = json_schema();
        let examples = schema["definitions"]["component"]["properties"]["entity"]["examples"]
            .as_array()
            .unwrap();
        assert_eq!(examples.len(), Entity::STANDARD.len());
        assert!(examples.iter().any(|e| e == "ROTARY-MIXER"));
    }

    #[test]
    fn serialized_devices_pass_the_structural_check() {
        let device = crate::Device::builder("s")
            .layer(crate::Layer::new("f", "f", crate::LayerType::Flow))
            .component(crate::Component::new(
                "a",
                "a",
                crate::Entity::Port,
                ["f"],
                crate::geometry::Span::square(100),
            ))
            .build()
            .unwrap();
        let document: Value = serde_json::from_str(&device.to_json().unwrap()).unwrap();
        assert_eq!(check_document(&document), Vec::<String>::new());
    }

    #[test]
    fn structural_check_reports_violations() {
        let document = json!({
            "layers": [{ "id": "f" }],
            "components": "oops",
            "valveMap": 7
        });
        let violations = check_document(&document);
        assert!(violations.iter().any(|v| v.contains("`name`")));
        assert!(violations
            .iter()
            .any(|v| v.contains("layers[0] missing `type`")));
        assert!(violations
            .iter()
            .any(|v| v.contains("`components` must be an array")));
        assert!(violations
            .iter()
            .any(|v| v.contains("`valveMap` must be an object")));
        assert_eq!(check_document(&json!(42)).len(), 1);
    }
}
