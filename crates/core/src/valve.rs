//! Valve bindings (ParchMint 1.2).
//!
//! Version 1.2 of the format records which valve components actuate which
//! flow connections via two parallel maps at the device level: `valveMap`
//! (valve component id → controlled connection id) and `valveTypeMap`
//! (valve component id → normally-open/closed polarity). The in-memory model
//! groups each binding into a single [`Valve`] record; the device serializer
//! re-splits them into the two maps for wire compatibility.

use crate::ids::{ComponentId, ConnectionId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Rest-state polarity of a membrane valve.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum ValveType {
    /// Flow passes when unactuated (push-down valve).
    #[default]
    #[serde(rename = "NORMALLY_OPEN")]
    NormallyOpen,
    /// Flow is blocked when unactuated (push-up valve).
    #[serde(rename = "NORMALLY_CLOSED")]
    NormallyClosed,
}

impl ValveType {
    /// The canonical serialized name.
    pub fn name(self) -> &'static str {
        match self {
            ValveType::NormallyOpen => "NORMALLY_OPEN",
            ValveType::NormallyClosed => "NORMALLY_CLOSED",
        }
    }
}

impl fmt::Display for ValveType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when a valve-type string is not recognised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseValveTypeError(String);

impl fmt::Display for ParseValveTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown valve type `{}` (expected NORMALLY_OPEN or NORMALLY_CLOSED)",
            self.0
        )
    }
}

impl std::error::Error for ParseValveTypeError {}

impl FromStr for ValveType {
    type Err = ParseValveTypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_uppercase().replace('-', "_").as_str() {
            "NORMALLY_OPEN" => Ok(ValveType::NormallyOpen),
            "NORMALLY_CLOSED" => Ok(ValveType::NormallyClosed),
            _ => Err(ParseValveTypeError(s.to_owned())),
        }
    }
}

/// A binding between a valve component and the flow connection it pinches.
///
/// # Examples
///
/// ```
/// use parchmint::{Valve, ValveType};
///
/// let v = Valve::new("v1", "ch3", ValveType::NormallyClosed);
/// assert_eq!(v.component.as_str(), "v1");
/// assert_eq!(v.controls.as_str(), "ch3");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Valve {
    /// The valve component (entity `VALVE`, `VALVE3D`, `PUMP`, …).
    pub component: ComponentId,
    /// The flow connection this valve actuates.
    pub controls: ConnectionId,
    /// Rest-state polarity.
    #[serde(default)]
    pub valve_type: ValveType,
}

impl Valve {
    /// Creates a valve binding.
    pub fn new(
        component: impl Into<ComponentId>,
        controls: impl Into<ConnectionId>,
        valve_type: ValveType,
    ) -> Self {
        Valve {
            component: component.into(),
            controls: controls.into(),
            valve_type,
        }
    }
}

impl fmt::Display for Valve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pinches {} ({})",
            self.component, self.controls, self.valve_type
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valve_type_parse() {
        assert_eq!(
            "NORMALLY_OPEN".parse::<ValveType>().unwrap(),
            ValveType::NormallyOpen
        );
        assert_eq!(
            "normally-closed".parse::<ValveType>().unwrap(),
            ValveType::NormallyClosed
        );
        assert!("SOMETIMES_OPEN".parse::<ValveType>().is_err());
    }

    #[test]
    fn valve_type_default_is_normally_open() {
        assert_eq!(ValveType::default(), ValveType::NormallyOpen);
    }

    #[test]
    fn valve_type_serde_names() {
        assert_eq!(
            serde_json::to_string(&ValveType::NormallyClosed).unwrap(),
            r#""NORMALLY_CLOSED""#
        );
        let v: ValveType = serde_json::from_str(r#""NORMALLY_OPEN""#).unwrap();
        assert_eq!(v, ValveType::NormallyOpen);
    }

    #[test]
    fn valve_round_trip_and_display() {
        let v = Valve::new("v1", "ch1", ValveType::NormallyClosed);
        let json = serde_json::to_string(&v).unwrap();
        let back: Valve = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
        assert_eq!(v.to_string(), "v1 pinches ch1 (NORMALLY_CLOSED)");
    }

    #[test]
    fn parse_error_message() {
        let err = "ajar".parse::<ValveType>().unwrap_err();
        assert!(err.to_string().contains("ajar"));
    }
}
