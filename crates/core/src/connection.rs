//! Connections: the channels joining component ports.
//!
//! A ParchMint connection is a hyperedge on a single layer: one *source*
//! terminal and one or more *sink* terminals, each naming a component and
//! one of its ports. Physical channel geometry is carried separately by
//! [`Feature`](crate::Feature)s so that the same netlist can exist with or
//! without a physical design.

use crate::ids::{ComponentId, ConnectionId, LayerId, PortLabel};
use crate::params::Params;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One terminal of a connection: a component/port pair.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Target {
    /// The component the terminal attaches to.
    pub component: ComponentId,
    /// The port on that component, when the component has explicit ports.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub port: Option<PortLabel>,
}

impl Target {
    /// Creates a terminal naming an explicit port.
    pub fn new(component: impl Into<ComponentId>, port: impl Into<PortLabel>) -> Self {
        Target {
            component: component.into(),
            port: Some(port.into()),
        }
    }

    /// Creates a terminal attaching anywhere on the component
    /// (port left unspecified, as permitted for single-port entities).
    pub fn component_only(component: impl Into<ComponentId>) -> Self {
        Target {
            component: component.into(),
            port: None,
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.port {
            Some(p) => write!(f, "{}.{}", self.component, p),
            None => write!(f, "{}", self.component),
        }
    }
}

/// A channel net joining a source terminal to one or more sinks on a layer.
///
/// # Examples
///
/// ```
/// use parchmint::{Connection, Target};
///
/// let c = Connection::new(
///     "ch1",
///     "inlet_to_mixer",
///     "flow",
///     Target::new("in1", "out"),
///     [Target::new("m1", "in")],
/// );
/// assert_eq!(c.sinks.len(), 1);
/// assert_eq!(c.terminals().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Connection {
    /// Unique identifier.
    pub id: ConnectionId,
    /// Human-readable name.
    pub name: String,
    /// The layer the channel is fabricated on.
    pub layer: LayerId,
    /// Driving terminal.
    pub source: Target,
    /// Driven terminals (at least one for a well-formed connection).
    pub sinks: Vec<Target>,
    /// Open parameters (channel width, depth, …).
    #[serde(default, skip_serializing_if = "Params::is_empty")]
    pub params: Params,
}

impl Connection {
    /// Creates a connection with empty parameters.
    pub fn new(
        id: impl Into<ConnectionId>,
        name: impl Into<String>,
        layer: impl Into<LayerId>,
        source: Target,
        sinks: impl IntoIterator<Item = Target>,
    ) -> Self {
        Connection {
            id: id.into(),
            name: name.into(),
            layer: layer.into(),
            source,
            sinks: sinks.into_iter().collect(),
            params: Params::new(),
        }
    }

    /// Builder-style parameter attachment.
    #[must_use]
    pub fn with_params(mut self, params: Params) -> Self {
        self.params = params;
        self
    }

    /// Iterates over all terminals: the source first, then each sink.
    pub fn terminals(&self) -> impl Iterator<Item = &Target> {
        std::iter::once(&self.source).chain(self.sinks.iter())
    }

    /// Number of terminals (1 + sinks).
    pub fn degree(&self) -> usize {
        1 + self.sinks.len()
    }

    /// True for plain two-terminal channels.
    pub fn is_two_terminal(&self) -> bool {
        self.sinks.len() == 1
    }

    /// True when `component` appears at any terminal.
    pub fn touches(&self, component: &ComponentId) -> bool {
        self.terminals().any(|t| &t.component == component)
    }
}

impl fmt::Display for Connection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} -> ", self.id, self.source)?;
        for (i, sink) in self.sinks.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{sink}")?;
        }
        write!(f, " [{}]", self.layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fanout() -> Connection {
        Connection::new(
            "ch2",
            "split",
            "flow",
            Target::new("t1", "out"),
            [Target::new("a", "in"), Target::new("b", "in")],
        )
    }

    #[test]
    fn terminal_iteration_order() {
        let c = fanout();
        let terms: Vec<String> = c.terminals().map(|t| t.to_string()).collect();
        assert_eq!(terms, vec!["t1.out", "a.in", "b.in"]);
        assert_eq!(c.degree(), 3);
        assert!(!c.is_two_terminal());
    }

    #[test]
    fn touches_checks_all_terminals() {
        let c = fanout();
        assert!(c.touches(&"t1".into()));
        assert!(c.touches(&"b".into()));
        assert!(!c.touches(&"z".into()));
    }

    #[test]
    fn component_only_target_omits_port() {
        let t = Target::component_only("in1");
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(json, r#"{"component":"in1"}"#);
        let back: Target = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.to_string(), "in1");
    }

    #[test]
    fn serde_round_trip() {
        let c = fanout().with_params(Params::new().with("width", 400));
        let json = serde_json::to_string(&c).unwrap();
        let back: Connection = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn serde_shape_matches_spec() {
        let c = Connection::new(
            "ch1",
            "n",
            "flow",
            Target::new("a", "p"),
            [Target::new("b", "q")],
        );
        let v = serde_json::to_value(&c).unwrap();
        assert_eq!(v["source"]["component"], "a");
        assert_eq!(v["source"]["port"], "p");
        assert_eq!(v["sinks"][0]["component"], "b");
        assert_eq!(v["layer"], "flow");
        assert!(v.get("params").is_none());
    }

    #[test]
    fn display_two_terminal() {
        let c = Connection::new(
            "ch1",
            "n",
            "flow",
            Target::new("a", "p"),
            [Target::new("b", "q")],
        );
        assert_eq!(c.to_string(), "ch1: a.p -> b.q [flow]");
        assert!(c.is_two_terminal());
    }
}
