//! # parchmint-verify
//!
//! Conformance validator and design-rule checker for ParchMint devices.
//!
//! An interchange format is only a standard if conformance is mechanically
//! checkable. This crate runs a battery of rules over a
//! [`parchmint::Device`] and produces a [`Report`] of [`Diagnostic`]s:
//!
//! - **REF\*** — referential integrity (ids unique, references resolve)
//! - **STR\*** / **VER\*** — structural well-formedness and versioning
//! - **GEO\*** — geometry of placed/routed devices
//! - **DRC\*** — fabrication design rules (widths, depths, spacing)
//! - **NET\*** — netlist connectivity and valve-binding sanity
//!
//! ```
//! use parchmint::{CompiledDevice, Device};
//! use parchmint_verify::validate;
//!
//! let device = Device::from_json(r#"{
//!     "name": "broken",
//!     "connections": [{
//!         "id": "ch1", "name": "dangling", "layer": "ghost",
//!         "source": {"component": "nobody"}, "sinks": []
//!     }]
//! }"#).unwrap();
//! let report = validate(&CompiledDevice::compile(device));
//! assert!(!report.is_conformant());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod diagnostics;
mod rules;
pub mod validator;

pub use diagnostics::{Diagnostic, Report, Rule, Severity};
pub use validator::{validate, DesignRules, Validator};

#[cfg(test)]
mod validator_tests;
