//! Referential-integrity rules (`REF*`): every identifier that is referenced
//! must exist, and identifiers must be unique within their section.

use crate::diagnostics::{Diagnostic, Report, Rule};
use parchmint::{CompiledDevice, Feature};
use std::collections::HashSet;

pub(crate) fn check(compiled: &CompiledDevice, report: &mut Report) {
    let device = compiled.device();
    let mut layer_ids = HashSet::new();
    for layer in &device.layers {
        if !layer_ids.insert(layer.id.as_str()) {
            report.push(Diagnostic::new(
                Rule::RefDuplicateId,
                format!("layers[{}]", layer.id),
                format!("duplicate layer id `{}`", layer.id),
            ));
        }
    }

    let mut component_ids = HashSet::new();
    for component in &device.components {
        let loc = format!("components[{}]", component.id);
        if !component_ids.insert(component.id.as_str()) {
            report.push(Diagnostic::new(
                Rule::RefDuplicateId,
                loc.clone(),
                format!("duplicate component id `{}`", component.id),
            ));
        }
        for layer in &component.layers {
            if !layer_ids.contains(layer.as_str()) {
                report.push(Diagnostic::new(
                    Rule::RefUnknownId,
                    loc.clone(),
                    format!("component occupies unknown layer `{layer}`"),
                ));
            }
        }
        for port in &component.ports {
            let port_loc = format!("{loc}.ports[{}]", port.label);
            if !layer_ids.contains(port.layer.as_str()) {
                report.push(Diagnostic::new(
                    Rule::RefUnknownId,
                    port_loc,
                    format!("port lives on unknown layer `{}`", port.layer),
                ));
            } else if !component.layers.contains(&port.layer) {
                report.push(Diagnostic::new(
                    Rule::RefPortLayerMismatch,
                    port_loc,
                    format!(
                        "port layer `{}` is not among the component's layers",
                        port.layer
                    ),
                ));
            }
        }
    }

    let mut connection_ids = HashSet::new();
    for connection in &device.connections {
        let loc = format!("connections[{}]", connection.id);
        if !connection_ids.insert(connection.id.as_str()) {
            report.push(Diagnostic::new(
                Rule::RefDuplicateId,
                loc.clone(),
                format!("duplicate connection id `{}`", connection.id),
            ));
        }
        if !layer_ids.contains(connection.layer.as_str()) {
            report.push(Diagnostic::new(
                Rule::RefUnknownId,
                loc.clone(),
                format!("connection routed on unknown layer `{}`", connection.layer),
            ));
        }
        for target in connection.terminals() {
            match compiled.component_by_id(target.component.as_str()) {
                None => report.push(Diagnostic::new(
                    Rule::RefUnknownId,
                    loc.clone(),
                    format!("terminal names unknown component `{}`", target.component),
                )),
                Some(component) => {
                    if let Some(port) = &target.port {
                        if component.port(port.as_str()).is_none() {
                            report.push(Diagnostic::new(
                                Rule::RefUnknownId,
                                loc.clone(),
                                format!(
                                    "terminal names unknown port `{}.{port}`",
                                    target.component
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    let mut feature_ids = HashSet::new();
    for feature in &device.features {
        let loc = format!("features[{}]", feature.id());
        if !feature_ids.insert(feature.id().as_str().to_owned()) {
            report.push(Diagnostic::new(
                Rule::RefDuplicateId,
                loc.clone(),
                format!("duplicate feature id `{}`", feature.id()),
            ));
        }
        if !layer_ids.contains(feature.layer().as_str()) {
            report.push(Diagnostic::new(
                Rule::RefUnknownId,
                loc.clone(),
                format!("feature drawn on unknown layer `{}`", feature.layer()),
            ));
        }
        match feature {
            Feature::Component(f) => {
                if !component_ids.contains(f.component.as_str()) {
                    report.push(Diagnostic::new(
                        Rule::RefUnknownId,
                        loc,
                        format!("placement of unknown component `{}`", f.component),
                    ));
                }
            }
            Feature::Connection(f) => {
                if !connection_ids.contains(f.connection.as_str()) {
                    report.push(Diagnostic::new(
                        Rule::RefUnknownId,
                        loc,
                        format!("route of unknown connection `{}`", f.connection),
                    ));
                }
            }
        }
    }

    for valve in &device.valves {
        let loc = format!("valves[{}]", valve.component);
        if !component_ids.contains(valve.component.as_str()) {
            report.push(Diagnostic::new(
                Rule::RefUnknownId,
                loc.clone(),
                format!(
                    "valve binding names unknown component `{}`",
                    valve.component
                ),
            ));
        }
        if !connection_ids.contains(valve.controls.as_str()) {
            report.push(Diagnostic::new(
                Rule::RefUnknownId,
                loc,
                format!("valve controls unknown connection `{}`", valve.controls),
            ));
        }
    }
}
