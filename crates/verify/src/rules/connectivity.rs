//! Netlist connectivity rules (`NET*`).

use crate::diagnostics::{Diagnostic, Report, Rule};
use parchmint::CompiledDevice;
use parchmint_graph::{Components, Netlist};

pub(crate) fn check(compiled: &CompiledDevice, report: &mut Report) {
    let device = compiled.device();
    if device.components.len() >= 2 {
        let netlist = Netlist::new(compiled);
        let components = Components::of(netlist.graph());
        if components.count() > 1 {
            report.push(Diagnostic::new(
                Rule::NetDisconnected,
                "connections",
                format!(
                    "netlist splits into {} disconnected islands",
                    components.count()
                ),
            ));
        }
        for node in netlist.graph().node_indices() {
            if netlist.graph().degree(node) == 0 {
                report.push(Diagnostic::new(
                    Rule::NetIsolatedComponent,
                    format!("components[{}]", netlist.component_at(node)),
                    "component participates in no connection",
                ));
            }
        }
    }

    for valve in &device.valves {
        let Some(component) = compiled.component_by_id(valve.component.as_str()) else {
            continue; // referential rules already flagged this
        };
        if !component.entity.is_control() {
            report.push(Diagnostic::new(
                Rule::NetValveEntity,
                format!("valves[{}]", valve.component),
                format!(
                    "valve binding targets entity {} — expected a valve or pump",
                    component.entity
                ),
            ));
        }
    }
}
