//! Structural well-formedness rules (`STR*`, `VER*`).

use crate::diagnostics::{Diagnostic, Report, Rule};
use parchmint::{CompiledDevice, Entity};
use std::collections::HashSet;

pub(crate) fn check(compiled: &CompiledDevice, report: &mut Report) {
    let device = compiled.device();
    if device.name.trim().is_empty() {
        report.push(Diagnostic::new(
            Rule::StrEmptyName,
            "device",
            "device has an empty name",
        ));
    }

    for layer in &device.layers {
        if layer.name.trim().is_empty() {
            report.push(Diagnostic::new(
                Rule::StrEmptyName,
                format!("layers[{}]", layer.id),
                "layer has an empty name",
            ));
        }
    }

    for component in &device.components {
        let loc = format!("components[{}]", component.id);
        if component.name.trim().is_empty() {
            report.push(Diagnostic::new(
                Rule::StrEmptyName,
                loc.clone(),
                "component has an empty name",
            ));
        }
        if component.layers.is_empty() {
            report.push(Diagnostic::new(
                Rule::StrNoLayers,
                loc.clone(),
                "component occupies no layers",
            ));
        }
        let mut labels = HashSet::new();
        for port in &component.ports {
            if !labels.insert(port.label.as_str()) {
                report.push(Diagnostic::new(
                    Rule::StrDuplicatePortLabel,
                    format!("{loc}.ports[{}]", port.label),
                    format!("duplicate port label `{}`", port.label),
                ));
            }
        }
    }

    for connection in &device.connections {
        let loc = format!("connections[{}]", connection.id);
        if connection.name.trim().is_empty() {
            report.push(Diagnostic::new(
                Rule::StrEmptyName,
                loc.clone(),
                "connection has an empty name",
            ));
        }
        if connection.sinks.is_empty() {
            report.push(Diagnostic::new(
                Rule::StrEmptyConnection,
                loc,
                "connection has no sinks",
            ));
        }
    }

    if !device.components.is_empty() && !device.components.iter().any(|c| c.entity == Entity::Port)
    {
        report.push(Diagnostic::new(
            Rule::StrNoExternalPort,
            "components",
            "device declares no PORT component; fluids cannot enter or leave",
        ));
    }

    let minimum = device.minimum_version();
    if device.version < minimum {
        report.push(Diagnostic::new(
            Rule::VerContentMismatch,
            "version",
            format!(
                "declared version {} cannot carry this content (needs {minimum})",
                device.version
            ),
        ));
    }
}
