//! Design rules (`DRC*`): fabrication limits on widths, depths, and spacing.

use crate::diagnostics::{Diagnostic, Report, Rule};
use crate::validator::DesignRules;
use parchmint::{CompiledDevice, ComponentFeature, Device, Feature};

pub(crate) fn check(compiled: &CompiledDevice, rules: &DesignRules, report: &mut Report) {
    let device = compiled.device();
    for feature in &device.features {
        let loc = format!("features[{}]", feature.id());
        match feature {
            Feature::Connection(route) => {
                if route.width < rules.min_channel_width {
                    report.push(Diagnostic::new(
                        Rule::DrcChannelWidth,
                        loc.clone(),
                        format!(
                            "channel width {} µm is below the minimum {} µm",
                            route.width, rules.min_channel_width
                        ),
                    ));
                }
                if route.depth < rules.min_channel_depth {
                    report.push(Diagnostic::new(
                        Rule::DrcChannelDepth,
                        loc,
                        format!(
                            "channel depth {} µm is below the minimum {} µm",
                            route.depth, rules.min_channel_depth
                        ),
                    ));
                }
            }
            Feature::Component(placement) => {
                if placement.depth < rules.min_channel_depth {
                    report.push(Diagnostic::new(
                        Rule::DrcChannelDepth,
                        loc,
                        format!(
                            "feature depth {} µm is below the minimum {} µm",
                            placement.depth, rules.min_channel_depth
                        ),
                    ));
                }
            }
        }
    }

    check_spacing(device, rules, report);
}

fn check_spacing(device: &Device, rules: &DesignRules, report: &mut Report) {
    let placements: Vec<&ComponentFeature> = device
        .features
        .iter()
        .filter_map(|f| f.as_component())
        .collect();
    for (i, a) in placements.iter().enumerate() {
        for b in &placements[i + 1..] {
            if a.layer != b.layer {
                continue;
            }
            let (fa, fb) = (a.footprint(), b.footprint());
            // Overlaps are reported separately by GEO003; spacing only
            // concerns placements that are disjoint but too close.
            if !fa.intersects(fb) && fa.inflated(rules.min_spacing).intersects(fb) {
                report.push(Diagnostic::new(
                    Rule::DrcSpacing,
                    format!("features[{}]", a.id),
                    format!(
                        "placements of `{}` and `{}` are closer than {} µm",
                        a.component, b.component, rules.min_spacing
                    ),
                ));
            }
        }
    }
}
