//! Geometric rules (`GEO*`), active for placed/routed devices.

use crate::diagnostics::{Diagnostic, Report, Rule};
use crate::validator::DesignRules;
use parchmint::geometry::{Point, Rect, Span};
use parchmint::{CompiledDevice, ComponentFeature, ConnectionFeature, Device};

pub(crate) fn check(compiled: &CompiledDevice, rules: &DesignRules, report: &mut Report) {
    let device = compiled.device();
    check_port_boundaries(device, report);

    let placements: Vec<&ComponentFeature> = device
        .features
        .iter()
        .filter_map(|f| f.as_component())
        .collect();
    let routes: Vec<&ConnectionFeature> = device
        .features
        .iter()
        .filter_map(|f| f.as_connection())
        .collect();

    check_placement_bounds(device, &placements, report);
    check_placement_overlap(&placements, report);
    check_span_mismatch(compiled, &placements, report);
    check_routes(compiled, rules, &routes, report);
    check_route_crossings(compiled, &placements, &routes, report);
}

fn check_port_boundaries(device: &Device, report: &mut Report) {
    for component in &device.components {
        for port in &component.ports {
            if !port.on_boundary(component.span) {
                report.push(Diagnostic::new(
                    Rule::GeoPortOffBoundary,
                    format!("components[{}].ports[{}]", component.id, port.label),
                    format!(
                        "port at ({}, {}) is not on the boundary of a {} footprint",
                        port.x, port.y, component.span
                    ),
                ));
            }
        }
    }
}

fn check_placement_bounds(device: &Device, placements: &[&ComponentFeature], report: &mut Report) {
    let Some(bounds) = device.declared_bounds() else {
        return;
    };
    let die = Rect::new(Point::ORIGIN, bounds);
    for placement in placements {
        if !die.contains_rect(placement.footprint()) {
            report.push(Diagnostic::new(
                Rule::GeoPlacementOutOfBounds,
                format!("features[{}]", placement.id),
                format!(
                    "placement {} exceeds the declared die outline {}",
                    placement.footprint(),
                    bounds
                ),
            ));
        }
    }
}

fn check_placement_overlap(placements: &[&ComponentFeature], report: &mut Report) {
    for (i, a) in placements.iter().enumerate() {
        for b in &placements[i + 1..] {
            if a.layer != b.layer {
                continue;
            }
            if a.footprint().intersects(b.footprint()) {
                report.push(Diagnostic::new(
                    Rule::GeoPlacementOverlap,
                    format!("features[{}]", a.id),
                    format!(
                        "placement of `{}` overlaps placement of `{}` on layer `{}`",
                        a.component, b.component, a.layer
                    ),
                ));
            }
        }
    }
}

fn check_span_mismatch(
    compiled: &CompiledDevice,
    placements: &[&ComponentFeature],
    report: &mut Report,
) {
    for placement in placements {
        let Some(component) = compiled.component_by_id(placement.component.as_str()) else {
            continue; // referential rules already flagged this
        };
        if component.span != placement.span && placement.span != component.span.rotated() {
            report.push(Diagnostic::new(
                Rule::GeoSpanMismatch,
                format!("features[{}]", placement.id),
                format!(
                    "placed span {} disagrees with component span {} (rotation allowed)",
                    placement.span, component.span
                ),
            ));
        }
    }
}

fn check_routes(
    compiled: &CompiledDevice,
    rules: &DesignRules,
    routes: &[&ConnectionFeature],
    report: &mut Report,
) {
    for route in routes {
        let loc = format!("features[{}]", route.id);
        if !route.is_rectilinear() {
            report.push(Diagnostic::new(
                Rule::GeoRouteNotRectilinear,
                loc.clone(),
                "route contains non-axis-aligned segments",
            ));
        }
        check_route_endpoints(compiled, rules, route, &loc, report);
    }
}

fn check_route_endpoints(
    compiled: &CompiledDevice,
    rules: &DesignRules,
    route: &ConnectionFeature,
    loc: &str,
    report: &mut Report,
) {
    let Some(connection) = compiled.connection_by_id(route.connection.as_str()) else {
        return;
    };
    let (Some(&first), Some(&last)) = (route.waypoints.first(), route.waypoints.last()) else {
        return;
    };
    if let Some(src) = compiled.target_position(&connection.source) {
        if src.manhattan_distance(first) > rules.endpoint_tolerance {
            report.push(Diagnostic::new(
                Rule::GeoRouteEndpointMismatch,
                loc.to_owned(),
                format!(
                    "route starts at {first} but source terminal `{}` is at {src}",
                    connection.source
                ),
            ));
        }
    }
    let sink_positions: Vec<Point> = connection
        .sinks
        .iter()
        .filter_map(|s| compiled.target_position(s))
        .collect();
    if !sink_positions.is_empty()
        && !sink_positions
            .iter()
            .any(|p| p.manhattan_distance(last) <= rules.endpoint_tolerance)
    {
        report.push(Diagnostic::new(
            Rule::GeoRouteEndpointMismatch,
            loc.to_owned(),
            format!("route ends at {last}, which meets no sink terminal"),
        ));
    }
}

/// Approximates a rectilinear segment as a thin rectangle for
/// interior-overlap testing (zero-extent axes widened to 1 µm).
fn segment_rect(a: Point, b: Point) -> Rect {
    let mut r = Rect::from_corners(a, b);
    if r.span.x == 0 {
        r.span = Span::new(1, r.span.y.max(1));
    }
    if r.span.y == 0 {
        r.span = Span::new(r.span.x.max(1), 1);
    }
    r
}

fn check_route_crossings(
    compiled: &CompiledDevice,
    placements: &[&ComponentFeature],
    routes: &[&ConnectionFeature],
    report: &mut Report,
) {
    for route in routes {
        let Some(connection) = compiled.connection_by_id(route.connection.as_str()) else {
            continue;
        };
        let terminal_components: Vec<&str> = connection
            .terminals()
            .map(|t| t.component.as_str())
            .collect();
        for placement in placements {
            if placement.layer != route.layer
                || terminal_components.contains(&placement.component.as_str())
            {
                continue;
            }
            let footprint = placement.footprint();
            for window in route.waypoints.windows(2) {
                if segment_rect(window[0], window[1]).intersects(footprint) {
                    report.push(Diagnostic::new(
                        Rule::GeoRouteCrossesComponent,
                        format!("features[{}]", route.id),
                        format!(
                            "route of `{}` passes through component `{}`",
                            route.connection, placement.component
                        ),
                    ));
                    break;
                }
            }
        }
    }
}
