//! Rule groups, one module per diagnostic-code prefix.

pub(crate) mod connectivity;
pub(crate) mod design;
pub(crate) mod geometry;
pub(crate) mod referential;
pub(crate) mod structure;
