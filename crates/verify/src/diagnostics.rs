//! Diagnostics produced by validation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Advisory only; the device is conformant.
    Info,
    /// Suspicious but not a conformance violation.
    Warning,
    /// The device violates the interchange contract.
    Error,
}

impl Severity {
    /// Lowercase label for rendering.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Stable identifier of the rule that produced a finding.
///
/// Codes are grouped by prefix: `REF` (referential integrity), `STR`
/// (structural well-formedness), `GEO` (geometry of a placed/routed
/// device), `DRC` (design rules), `NET` (netlist connectivity), and `VER`
/// (versioning).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Rule {
    /// Duplicate identifier within a section.
    RefDuplicateId,
    /// Reference to an identifier that does not exist.
    RefUnknownId,
    /// A port references a layer its component does not occupy.
    RefPortLayerMismatch,
    /// Duplicate port label within one component.
    StrDuplicatePortLabel,
    /// Connection with no sinks.
    StrEmptyConnection,
    /// Component occupies no layers.
    StrNoLayers,
    /// Empty human-readable name.
    StrEmptyName,
    /// Device declares no external PORT component.
    StrNoExternalPort,
    /// Declared version too low for the content present.
    VerContentMismatch,
    /// Port lies off its component's boundary.
    GeoPortOffBoundary,
    /// Placement extends beyond the declared die outline.
    GeoPlacementOutOfBounds,
    /// Two placements on a shared layer overlap.
    GeoPlacementOverlap,
    /// A route is not rectilinear.
    GeoRouteNotRectilinear,
    /// A route endpoint does not meet the terminal port position.
    GeoRouteEndpointMismatch,
    /// A routed channel passes through a component it does not terminate on.
    GeoRouteCrossesComponent,
    /// A placement span disagrees with the component's declared span.
    GeoSpanMismatch,
    /// Channel narrower than the minimum width.
    DrcChannelWidth,
    /// Feature shallower than the minimum depth.
    DrcChannelDepth,
    /// Placements closer than the minimum spacing.
    DrcSpacing,
    /// The flow netlist is disconnected.
    NetDisconnected,
    /// A component participates in no connection.
    NetIsolatedComponent,
    /// A valve binding references a component whose entity is not a
    /// valve/pump.
    NetValveEntity,
}

impl Rule {
    /// The stable short code, e.g. `REF001`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::RefDuplicateId => "REF001",
            Rule::RefUnknownId => "REF002",
            Rule::RefPortLayerMismatch => "REF003",
            Rule::StrDuplicatePortLabel => "STR001",
            Rule::StrEmptyConnection => "STR002",
            Rule::StrNoLayers => "STR003",
            Rule::StrEmptyName => "STR004",
            Rule::StrNoExternalPort => "STR005",
            Rule::VerContentMismatch => "VER001",
            Rule::GeoPortOffBoundary => "GEO001",
            Rule::GeoPlacementOutOfBounds => "GEO002",
            Rule::GeoPlacementOverlap => "GEO003",
            Rule::GeoRouteNotRectilinear => "GEO004",
            Rule::GeoRouteEndpointMismatch => "GEO005",
            Rule::GeoRouteCrossesComponent => "GEO006",
            Rule::GeoSpanMismatch => "GEO007",
            Rule::DrcChannelWidth => "DRC001",
            Rule::DrcChannelDepth => "DRC002",
            Rule::DrcSpacing => "DRC003",
            Rule::NetDisconnected => "NET001",
            Rule::NetIsolatedComponent => "NET002",
            Rule::NetValveEntity => "NET003",
        }
    }

    /// The default severity findings of this rule carry.
    pub fn default_severity(self) -> Severity {
        match self {
            Rule::RefDuplicateId
            | Rule::RefUnknownId
            | Rule::StrDuplicatePortLabel
            | Rule::StrEmptyConnection
            | Rule::StrNoLayers
            | Rule::VerContentMismatch
            | Rule::GeoPlacementOutOfBounds
            | Rule::GeoPlacementOverlap
            | Rule::GeoRouteCrossesComponent
            | Rule::DrcChannelWidth
            | Rule::DrcChannelDepth
            | Rule::DrcSpacing => Severity::Error,
            Rule::RefPortLayerMismatch
            | Rule::StrEmptyName
            | Rule::StrNoExternalPort
            | Rule::GeoPortOffBoundary
            | Rule::GeoRouteNotRectilinear
            | Rule::GeoRouteEndpointMismatch
            | Rule::GeoSpanMismatch
            | Rule::NetDisconnected
            | Rule::NetValveEntity => Severity::Warning,
            Rule::NetIsolatedComponent => Severity::Info,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One validation finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Severity of the finding.
    pub severity: Severity,
    /// The rule that fired.
    pub rule: Rule,
    /// Where in the device the finding anchors, e.g. `components[m1]`.
    pub location: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic at the rule's default severity.
    pub fn new(rule: Rule, location: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: rule.default_severity(),
            rule,
            location: location.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.rule, self.location, self.message
        )
    }
}

/// The outcome of validating one device.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Creates an empty (clean) report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// All findings in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Findings at exactly `severity`.
    pub fn with_severity(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }

    /// Findings produced by `rule`.
    pub fn by_rule(&self, rule: Rule) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.rule == rule)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.with_severity(Severity::Error).count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.with_severity(Severity::Warning).count()
    }

    /// Total number of findings.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// True when no findings were recorded at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when the device is conformant (no error-severity findings).
    pub fn is_conformant(&self) -> bool {
        self.error_count() == 0
    }

    /// Merges another report's findings into this one.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "clean: no findings");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        writeln!(
            f,
            "{} error(s), {} warning(s), {} finding(s) total",
            self.error_count(),
            self.warning_count(),
            self.len()
        )
    }
}

impl FromIterator<Diagnostic> for Report {
    fn from_iter<T: IntoIterator<Item = Diagnostic>>(iter: T) -> Self {
        Report {
            diagnostics: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn rule_codes_are_unique() {
        let rules = [
            Rule::RefDuplicateId,
            Rule::RefUnknownId,
            Rule::RefPortLayerMismatch,
            Rule::StrDuplicatePortLabel,
            Rule::StrEmptyConnection,
            Rule::StrNoLayers,
            Rule::StrEmptyName,
            Rule::StrNoExternalPort,
            Rule::VerContentMismatch,
            Rule::GeoPortOffBoundary,
            Rule::GeoPlacementOutOfBounds,
            Rule::GeoPlacementOverlap,
            Rule::GeoRouteNotRectilinear,
            Rule::GeoRouteEndpointMismatch,
            Rule::GeoRouteCrossesComponent,
            Rule::GeoSpanMismatch,
            Rule::DrcChannelWidth,
            Rule::DrcChannelDepth,
            Rule::DrcSpacing,
            Rule::NetDisconnected,
            Rule::NetIsolatedComponent,
            Rule::NetValveEntity,
        ];
        let mut codes: Vec<&str> = rules.iter().map(|r| r.code()).collect();
        codes.sort_unstable();
        let before = codes.len();
        codes.dedup();
        assert_eq!(codes.len(), before, "duplicate rule codes");
    }

    #[test]
    fn diagnostic_display() {
        let d = Diagnostic::new(
            Rule::RefUnknownId,
            "connections[ch1]",
            "unknown component `x`",
        );
        assert_eq!(
            d.to_string(),
            "error [REF002] connections[ch1]: unknown component `x`"
        );
    }

    #[test]
    fn report_counting_and_conformance() {
        let mut r = Report::new();
        assert!(r.is_conformant());
        assert!(r.is_empty());
        r.push(Diagnostic::new(
            Rule::StrEmptyName,
            "layers[l0]",
            "empty name",
        ));
        assert!(r.is_conformant(), "warnings do not break conformance");
        r.push(Diagnostic::new(Rule::RefUnknownId, "x", "y"));
        assert!(!r.is_conformant());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert_eq!(r.len(), 2);
        assert_eq!(r.by_rule(Rule::RefUnknownId).count(), 1);
    }

    #[test]
    fn report_merge_and_collect() {
        let mut a: Report = vec![Diagnostic::new(Rule::StrEmptyName, "l", "m")]
            .into_iter()
            .collect();
        let b: Report = vec![Diagnostic::new(Rule::RefUnknownId, "l2", "m2")]
            .into_iter()
            .collect();
        a.merge(b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn report_display() {
        let clean = Report::new();
        assert!(clean.to_string().contains("clean"));
        let mut r = Report::new();
        r.push(Diagnostic::new(
            Rule::DrcChannelWidth,
            "features[f1]",
            "too narrow",
        ));
        let text = r.to_string();
        assert!(text.contains("DRC001"));
        assert!(text.contains("1 error(s)"));
    }
}
