//! The validator: design-rule configuration and rule orchestration.

use crate::diagnostics::Report;
use crate::rules;
use parchmint::CompiledDevice;

/// Fabrication limits the `DRC*` and `GEO*` rules enforce.
///
/// Defaults approximate soft-lithography PDMS processes: 5 µm minimum
/// feature width/depth and 10 µm spacing between independent features.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignRules {
    /// Minimum routed channel width, in µm.
    pub min_channel_width: i64,
    /// Minimum feature depth, in µm.
    pub min_channel_depth: i64,
    /// Minimum clearance between disjoint placements, in µm.
    pub min_spacing: i64,
    /// Manhattan slack allowed between a route endpoint and its terminal
    /// port, in µm.
    pub endpoint_tolerance: i64,
}

impl Default for DesignRules {
    fn default() -> Self {
        DesignRules {
            min_channel_width: 5,
            min_channel_depth: 5,
            min_spacing: 10,
            endpoint_tolerance: 0,
        }
    }
}

/// Validates [`Device`]s against the interchange contract and a set of
/// design rules.
///
/// # Examples
///
/// ```
/// use parchmint::{CompiledDevice, Device};
/// use parchmint_verify::Validator;
///
/// let compiled = CompiledDevice::compile(Device::new("empty"));
/// let report = Validator::new().validate(&compiled);
/// assert!(report.is_conformant());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Validator {
    rules: DesignRules,
}

/// Runs one rule group under an observability span and counts the
/// diagnostics it contributed.
fn rule_group(
    span: &'static str,
    diagnostics: &'static str,
    report: &mut Report,
    check: impl FnOnce(&mut Report),
) {
    let _span = parchmint_obs::Span::enter(span);
    let before = report.len();
    check(report);
    parchmint_obs::count(diagnostics, (report.len() - before) as u64);
}

impl Validator {
    /// Creates a validator with default design rules.
    pub fn new() -> Self {
        Validator::default()
    }

    /// Creates a validator with explicit design rules.
    pub fn with_rules(rules: DesignRules) -> Self {
        Validator { rules }
    }

    /// The active design rules.
    pub fn rules(&self) -> &DesignRules {
        &self.rules
    }

    /// Runs every rule group over a compiled device.
    ///
    /// Rules query the compiled index for id resolution and terminal
    /// positions; raw-vector traversals (duplicate detection, per-entity
    /// sweeps) go through [`CompiledDevice::device`]. Each rule group
    /// runs under its own observability span and reports how many
    /// diagnostics it contributed.
    pub fn validate(&self, compiled: &CompiledDevice) -> Report {
        let mut report = Report::new();
        rule_group(
            "verify.referential",
            "verify.referential.diagnostics",
            &mut report,
            |r| rules::referential::check(compiled, r),
        );
        rule_group(
            "verify.structure",
            "verify.structure.diagnostics",
            &mut report,
            |r| rules::structure::check(compiled, r),
        );
        rule_group(
            "verify.geometry",
            "verify.geometry.diagnostics",
            &mut report,
            |r| rules::geometry::check(compiled, &self.rules, r),
        );
        rule_group(
            "verify.design",
            "verify.design.diagnostics",
            &mut report,
            |r| rules::design::check(compiled, &self.rules, r),
        );
        rule_group(
            "verify.connectivity",
            "verify.connectivity.diagnostics",
            &mut report,
            |r| rules::connectivity::check(compiled, r),
        );
        report
    }
}

/// Validates a compiled device with default rules; shorthand for
/// `Validator::new().validate(..)`.
pub fn validate(compiled: &CompiledDevice) -> Report {
    Validator::new().validate(compiled)
}
