//! The validator: design-rule configuration and rule orchestration.

use crate::diagnostics::Report;
use crate::rules;
use parchmint::{CompiledDevice, Device};

/// Fabrication limits the `DRC*` and `GEO*` rules enforce.
///
/// Defaults approximate soft-lithography PDMS processes: 5 µm minimum
/// feature width/depth and 10 µm spacing between independent features.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignRules {
    /// Minimum routed channel width, in µm.
    pub min_channel_width: i64,
    /// Minimum feature depth, in µm.
    pub min_channel_depth: i64,
    /// Minimum clearance between disjoint placements, in µm.
    pub min_spacing: i64,
    /// Manhattan slack allowed between a route endpoint and its terminal
    /// port, in µm.
    pub endpoint_tolerance: i64,
}

impl Default for DesignRules {
    fn default() -> Self {
        DesignRules {
            min_channel_width: 5,
            min_channel_depth: 5,
            min_spacing: 10,
            endpoint_tolerance: 0,
        }
    }
}

/// Validates [`Device`]s against the interchange contract and a set of
/// design rules.
///
/// # Examples
///
/// ```
/// use parchmint::Device;
/// use parchmint_verify::Validator;
///
/// let device = Device::new("empty");
/// let report = Validator::new().validate(&device);
/// assert!(report.is_conformant());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Validator {
    rules: DesignRules,
}

impl Validator {
    /// Creates a validator with default design rules.
    pub fn new() -> Self {
        Validator::default()
    }

    /// Creates a validator with explicit design rules.
    pub fn with_rules(rules: DesignRules) -> Self {
        Validator { rules }
    }

    /// The active design rules.
    pub fn rules(&self) -> &DesignRules {
        &self.rules
    }

    /// Runs every rule group over `device` and collects the findings.
    ///
    /// Compiles a throwaway [`CompiledDevice`] internally; callers that
    /// already hold one should use [`Validator::validate_compiled`].
    pub fn validate(&self, device: &Device) -> Report {
        self.validate_compiled(&CompiledDevice::from_ref(device))
    }

    /// Runs every rule group over an already-compiled device.
    ///
    /// Rules query the compiled index for id resolution and terminal
    /// positions; raw-vector traversals (duplicate detection, per-entity
    /// sweeps) go through [`CompiledDevice::device`].
    pub fn validate_compiled(&self, compiled: &CompiledDevice) -> Report {
        let mut report = Report::new();
        rules::referential::check(compiled, &mut report);
        rules::structure::check(compiled, &mut report);
        rules::geometry::check(compiled, &self.rules, &mut report);
        rules::design::check(compiled, &self.rules, &mut report);
        rules::connectivity::check(compiled, &mut report);
        report
    }
}

/// Validates with default rules; shorthand for `Validator::new().validate(..)`.
pub fn validate(device: &Device) -> Report {
    Validator::new().validate(device)
}

/// Validates a compiled device with default rules; shorthand for
/// `Validator::new().validate_compiled(..)`.
pub fn validate_compiled(compiled: &CompiledDevice) -> Report {
    Validator::new().validate_compiled(compiled)
}
