//! Rule-by-rule validator tests: each test constructs a device that
//! violates exactly one contract and asserts the matching rule fires.

use crate::diagnostics::Report;
use crate::{DesignRules, Rule, Severity, Validator};
use parchmint::geometry::{Point, Span};
use parchmint::CompiledDevice;
use parchmint::{
    Component, ComponentFeature, Connection, ConnectionFeature, Device, Entity, Layer, LayerType,
    Port, Target, Valve, ValveType, Version,
};

/// A minimal clean device: inlet port -> mixer -> outlet port, placed and
/// routed, with generous geometry.
fn clean_device() -> Device {
    let mut d = Device::new("clean");
    d.layers.push(Layer::new("f0", "flow", LayerType::Flow));
    d.components.push(
        Component::new("in", "inlet", Entity::Port, ["f0"], Span::square(200))
            .with_port(Port::new("p", "f0", 200, 100)),
    );
    d.components.push(
        Component::new("m", "mixer", Entity::Mixer, ["f0"], Span::new(1000, 400))
            .with_port(Port::new("a", "f0", 0, 200))
            .with_port(Port::new("b", "f0", 1000, 200)),
    );
    d.components.push(
        Component::new("out", "outlet", Entity::Port, ["f0"], Span::square(200))
            .with_port(Port::new("p", "f0", 0, 100)),
    );
    d.connections.push(Connection::new(
        "c1",
        "in_to_m",
        "f0",
        Target::new("in", "p"),
        [Target::new("m", "a")],
    ));
    d.connections.push(Connection::new(
        "c2",
        "m_to_out",
        "f0",
        Target::new("m", "b"),
        [Target::new("out", "p")],
    ));
    d.features.push(
        ComponentFeature::new(
            "pf_in",
            "in",
            "f0",
            Point::new(0, 100),
            Span::square(200),
            50,
        )
        .into(),
    );
    d.features.push(
        ComponentFeature::new(
            "pf_m",
            "m",
            "f0",
            Point::new(500, 0),
            Span::new(1000, 400),
            50,
        )
        .into(),
    );
    d.features.push(
        ComponentFeature::new(
            "pf_out",
            "out",
            "f0",
            Point::new(1800, 100),
            Span::square(200),
            50,
        )
        .into(),
    );
    d.features.push(
        ConnectionFeature::new(
            "rf_1",
            "c1",
            "f0",
            100,
            50,
            [Point::new(200, 200), Point::new(500, 200)],
        )
        .into(),
    );
    d.features.push(
        ConnectionFeature::new(
            "rf_2",
            "c2",
            "f0",
            100,
            50,
            [Point::new(1500, 200), Point::new(1800, 200)],
        )
        .into(),
    );
    d.set_declared_bounds(Span::new(2000, 500));
    d
}

/// Test shorthand: compile and validate with default rules.
fn validate(device: &Device) -> Report {
    crate::validate(&CompiledDevice::from_ref(device))
}

fn fires(device: &Device, rule: Rule) -> bool {
    validate(device).by_rule(rule).next().is_some()
}

#[test]
fn clean_device_is_conformant() {
    let report = validate(&clean_device());
    assert!(report.is_conformant(), "unexpected errors:\n{report}");
    assert_eq!(report.warning_count(), 0, "unexpected warnings:\n{report}");
}

// ---- REF -------------------------------------------------------------

#[test]
fn duplicate_layer_id_fires() {
    let mut d = clean_device();
    d.layers.push(Layer::new("f0", "dup", LayerType::Control));
    assert!(fires(&d, Rule::RefDuplicateId));
}

#[test]
fn duplicate_component_id_fires() {
    let mut d = clean_device();
    d.components.push(Component::new(
        "m",
        "dup",
        Entity::Node,
        ["f0"],
        Span::square(1),
    ));
    assert!(fires(&d, Rule::RefDuplicateId));
}

#[test]
fn duplicate_connection_id_fires() {
    let mut d = clean_device();
    let dup = d.connections[0].clone();
    d.connections.push(dup);
    assert!(fires(&d, Rule::RefDuplicateId));
}

#[test]
fn duplicate_feature_id_fires() {
    let mut d = clean_device();
    let dup = d.features[0].clone();
    d.features.push(dup);
    assert!(fires(&d, Rule::RefDuplicateId));
}

#[test]
fn unknown_component_layer_fires() {
    let mut d = clean_device();
    d.components[0].layers.push("ghost".into());
    assert!(fires(&d, Rule::RefUnknownId));
}

#[test]
fn unknown_port_layer_fires() {
    let mut d = clean_device();
    d.components[0].ports[0].layer = "ghost".into();
    assert!(fires(&d, Rule::RefUnknownId));
}

#[test]
fn port_layer_mismatch_fires() {
    let mut d = clean_device();
    d.layers.push(Layer::new("c0", "ctl", LayerType::Control));
    d.components[0].ports[0].layer = "c0".into(); // exists, but component is flow-only
    assert!(fires(&d, Rule::RefPortLayerMismatch));
}

#[test]
fn unknown_connection_layer_fires() {
    let mut d = clean_device();
    d.connections[0].layer = "ghost".into();
    assert!(fires(&d, Rule::RefUnknownId));
}

#[test]
fn unknown_terminal_component_fires() {
    let mut d = clean_device();
    d.connections[0].sinks.push(Target::new("ghost", "p"));
    assert!(fires(&d, Rule::RefUnknownId));
}

#[test]
fn unknown_terminal_port_fires() {
    let mut d = clean_device();
    d.connections[0].sinks[0] = Target::new("m", "sideways");
    assert!(fires(&d, Rule::RefUnknownId));
}

#[test]
fn unknown_feature_targets_fire() {
    let mut d = clean_device();
    d.features.push(
        ComponentFeature::new("pf_x", "ghost", "f0", Point::ORIGIN, Span::square(1), 50).into(),
    );
    d.features
        .push(ConnectionFeature::new("rf_x", "ghost", "ghost_layer", 100, 50, []).into());
    let report = validate(&d);
    assert!(report.by_rule(Rule::RefUnknownId).count() >= 3);
}

#[test]
fn unknown_valve_references_fire() {
    let mut d = clean_device();
    d.valves
        .push(Valve::new("ghost", "c1", ValveType::NormallyOpen));
    d.valves
        .push(Valve::new("m", "ghost", ValveType::NormallyOpen));
    let report = validate(&d);
    assert!(report.by_rule(Rule::RefUnknownId).count() >= 2);
}

// ---- STR / VER --------------------------------------------------------

#[test]
fn empty_names_warn() {
    let mut d = clean_device();
    d.name = " ".into();
    d.layers[0].name = "".into();
    d.components[0].name = "".into();
    d.connections[0].name = "".into();
    let report = validate(&d);
    assert_eq!(report.by_rule(Rule::StrEmptyName).count(), 4);
    assert!(report.is_conformant(), "names are warnings only");
}

#[test]
fn duplicate_port_label_fires() {
    let mut d = clean_device();
    d.components[1].ports.push(Port::new("a", "f0", 500, 0));
    assert!(fires(&d, Rule::StrDuplicatePortLabel));
}

#[test]
fn sinkless_connection_fires() {
    let mut d = clean_device();
    d.connections[0].sinks.clear();
    assert!(fires(&d, Rule::StrEmptyConnection));
}

#[test]
fn layerless_component_fires() {
    let mut d = clean_device();
    d.components[1].layers.clear();
    assert!(fires(&d, Rule::StrNoLayers));
}

#[test]
fn missing_external_port_warns() {
    let mut d = clean_device();
    for c in &mut d.components {
        c.entity = Entity::Mixer;
    }
    assert!(fires(&d, Rule::StrNoExternalPort));
}

#[test]
fn version_content_mismatch_fires() {
    let mut d = clean_device();
    d.version = Version::V1_0; // but features are present
    assert!(fires(&d, Rule::VerContentMismatch));
}

// ---- GEO ---------------------------------------------------------------

#[test]
fn port_off_boundary_warns() {
    let mut d = clean_device();
    d.components[1].ports[0] = Port::new("a", "f0", 500, 200); // interior
    assert!(fires(&d, Rule::GeoPortOffBoundary));
}

#[test]
fn placement_out_of_bounds_fires() {
    let mut d = clean_device();
    d.set_declared_bounds(Span::new(1000, 300));
    assert!(fires(&d, Rule::GeoPlacementOutOfBounds));
}

#[test]
fn no_declared_bounds_skips_bounds_check() {
    let mut d = clean_device();
    d.params.remove("x-span");
    d.params.remove("y-span");
    assert!(!fires(&d, Rule::GeoPlacementOutOfBounds));
}

#[test]
fn overlapping_placements_fire() {
    let mut d = clean_device();
    // Move the inlet placement on top of the mixer.
    if let parchmint::Feature::Component(f) = &mut d.features[0] {
        f.location = Point::new(600, 100);
    }
    assert!(fires(&d, Rule::GeoPlacementOverlap));
}

#[test]
fn overlap_on_different_layers_allowed() {
    let mut d = clean_device();
    d.layers.push(Layer::new("c0", "ctl", LayerType::Control));
    if let parchmint::Feature::Component(f) = &mut d.features[0] {
        f.location = Point::new(600, 100);
        f.layer = "c0".into();
    }
    assert!(!fires(&d, Rule::GeoPlacementOverlap));
}

#[test]
fn span_mismatch_warns_but_rotation_allowed() {
    let mut d = clean_device();
    if let parchmint::Feature::Component(f) = &mut d.features[1] {
        f.span = Span::new(400, 1000); // rotated mixer: fine
    }
    assert!(!fires(&d, Rule::GeoSpanMismatch));
    if let parchmint::Feature::Component(f) = &mut d.features[1] {
        f.span = Span::new(999, 400); // shrunk: not fine
    }
    assert!(fires(&d, Rule::GeoSpanMismatch));
}

#[test]
fn diagonal_route_warns() {
    let mut d = clean_device();
    if let parchmint::Feature::Connection(f) = &mut d.features[3] {
        f.waypoints = vec![Point::new(200, 200), Point::new(500, 300)];
    }
    assert!(fires(&d, Rule::GeoRouteNotRectilinear));
}

#[test]
fn route_endpoint_mismatch_warns() {
    let mut d = clean_device();
    if let parchmint::Feature::Connection(f) = &mut d.features[3] {
        f.waypoints = vec![Point::new(210, 200), Point::new(500, 200)]; // 10 µm off source
    }
    assert!(fires(&d, Rule::GeoRouteEndpointMismatch));

    // With tolerance, the same route passes.
    let tolerant = Validator::with_rules(DesignRules {
        endpoint_tolerance: 16,
        ..DesignRules::default()
    });
    assert!(tolerant
        .validate(&CompiledDevice::from_ref(&d))
        .by_rule(Rule::GeoRouteEndpointMismatch)
        .next()
        .is_none());
}

#[test]
fn route_through_foreign_component_fires() {
    let mut d = clean_device();
    // Park a chamber square in the path of rf_1.
    d.components.push(Component::new(
        "obst",
        "obstacle",
        Entity::ReactionChamber,
        ["f0"],
        Span::square(100),
    ));
    d.features.push(
        ComponentFeature::new(
            "pf_obst",
            "obst",
            "f0",
            Point::new(300, 150),
            Span::square(100),
            50,
        )
        .into(),
    );
    assert!(fires(&d, Rule::GeoRouteCrossesComponent));
}

#[test]
fn route_may_touch_its_own_terminals() {
    // rf_1 runs from the inlet into the mixer; neither terminal counts as a
    // crossing even though the endpoints touch their footprints.
    assert!(!fires(&clean_device(), Rule::GeoRouteCrossesComponent));
}

// ---- DRC ----------------------------------------------------------------

#[test]
fn narrow_channel_fires() {
    let mut d = clean_device();
    if let parchmint::Feature::Connection(f) = &mut d.features[3] {
        f.width = 2;
    }
    assert!(fires(&d, Rule::DrcChannelWidth));
}

#[test]
fn shallow_feature_fires() {
    let mut d = clean_device();
    if let parchmint::Feature::Component(f) = &mut d.features[0] {
        f.depth = 1;
    }
    assert!(fires(&d, Rule::DrcChannelDepth));
}

#[test]
fn tight_spacing_fires_without_overlap() {
    let mut d = clean_device();
    // Inlet footprint [0,200)×[100,300); mixer starts at x=500. Slide the
    // inlet to x=495..695? that overlaps. Instead end at x=495: gap 5 < 10.
    if let parchmint::Feature::Component(f) = &mut d.features[0] {
        f.location = Point::new(295, 100); // ends at 495; mixer at 500 → 5 µm gap
    }
    let report = validate(&d);
    assert!(report.by_rule(Rule::DrcSpacing).next().is_some());
    assert!(
        report.by_rule(Rule::GeoPlacementOverlap).next().is_none(),
        "spacing violations are not overlaps"
    );
}

#[test]
fn custom_rules_change_thresholds() {
    let strict = Validator::with_rules(DesignRules {
        min_channel_width: 500,
        ..DesignRules::default()
    });
    let report = strict.validate(&CompiledDevice::from_ref(&clean_device()));
    assert!(report.by_rule(Rule::DrcChannelWidth).next().is_some());
    assert_eq!(strict.rules().min_channel_width, 500);
}

// ---- NET -----------------------------------------------------------------

#[test]
fn disconnected_netlist_warns() {
    let mut d = clean_device();
    d.connections.remove(1); // cut mixer from outlet
    let report = validate(&d);
    assert!(report.by_rule(Rule::NetDisconnected).next().is_some());
    assert!(
        report.by_rule(Rule::NetIsolatedComponent).next().is_some(),
        "outlet is now isolated"
    );
}

#[test]
fn valve_on_non_control_entity_warns() {
    let mut d = clean_device();
    d.valves
        .push(Valve::new("m", "c1", ValveType::NormallyOpen));
    assert!(fires(&d, Rule::NetValveEntity));
}

#[test]
fn valve_on_valve_entity_clean() {
    let mut d = clean_device();
    d.layers.push(Layer::new("c0", "ctl", LayerType::Control));
    d.components.push(
        Component::new("v1", "valve", Entity::Valve, ["c0"], Span::square(30))
            .with_port(Port::new("p", "c0", 0, 15)),
    );
    d.connections.push(Connection::new(
        "ctl",
        "actuate",
        "c0",
        Target::new("v1", "p"),
        [Target::new("m", "a")],
    ));
    d.valves
        .push(Valve::new("v1", "c1", ValveType::NormallyClosed));
    assert!(!fires(&d, Rule::NetValveEntity));
}

#[test]
fn severities_match_rule_defaults() {
    let mut d = clean_device();
    d.connections[0].sinks.clear();
    let report = validate(&d);
    let diag = report.by_rule(Rule::StrEmptyConnection).next().unwrap();
    assert_eq!(diag.severity, Severity::Error);
}
