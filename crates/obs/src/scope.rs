//! The thread-local recorder scope and the emission API.
//!
//! Instrumented code never holds a recorder; it calls the free functions
//! here, which consult a thread-local slot installed by
//! [`with_recorder`]. With the slot empty (the default) every emission
//! is one `RefCell` borrow and an `Option` check.

use crate::event::{Event, EventKind};
use crate::recorder::Recorder;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    static CURRENT: RefCell<Option<Arc<dyn Recorder>>> = const { RefCell::new(None) };
}

/// Restores the previously installed recorder on drop, so nesting and
/// unwinding both leave the slot as they found it.
struct Restore(Option<Arc<dyn Recorder>>);

impl Drop for Restore {
    fn drop(&mut self) {
        let prior = self.0.take();
        CURRENT.with(|slot| *slot.borrow_mut() = prior);
    }
}

/// Installs `recorder` as this thread's sink for the duration of `f`.
///
/// Scopes nest: the prior recorder (if any) is restored when `f`
/// returns, including by panic.
pub fn with_recorder<T>(recorder: Arc<dyn Recorder>, f: impl FnOnce() -> T) -> T {
    let prior = CURRENT.with(|slot| slot.borrow_mut().replace(recorder));
    let _restore = Restore(prior);
    f()
}

/// Whether an enabled recorder is installed on this thread.
///
/// Hot paths consult this before doing work that exists only to feed the
/// trace (running cost totals, residual computation, sample buffers).
pub fn enabled() -> bool {
    CURRENT.with(|slot| {
        slot.borrow()
            .as_ref()
            .is_some_and(|recorder| recorder.is_enabled())
    })
}

fn emit(name: &'static str, kind: EventKind) {
    // Clone the handle out of the borrow before recording, so a recorder
    // that itself emits (e.g. an instrumented decorator) cannot re-enter
    // the RefCell.
    let recorder = CURRENT.with(|slot| slot.borrow().clone());
    if let Some(recorder) = recorder {
        if recorder.is_enabled() {
            recorder.record(Event::new(name, kind));
        }
    }
}

/// Adds `delta` to the named counter.
pub fn count(name: &'static str, delta: u64) {
    emit(name, EventKind::Count(delta));
}

/// Records one numeric sample under the name (samples keep emission
/// order, so cost-over-iteration curves survive aggregation).
pub fn sample(name: &'static str, value: f64) {
    emit(name, EventKind::Sample(value));
}

/// Records one histogram observation under the name.
pub fn observe(name: &'static str, value: u64) {
    emit(name, EventKind::Observe(value));
}

/// An RAII span: construction notes the clock, drop emits
/// [`EventKind::Span`] with the elapsed wall time.
///
/// When no enabled recorder is installed at entry the span never reads
/// the clock and drop does nothing.
#[must_use = "a span measures the scope it is bound to; binding it to _ drops it immediately"]
pub struct Span {
    name: &'static str,
    started: Option<Instant>,
}

impl Span {
    /// Starts a span; time begins now if tracing is enabled.
    pub fn enter(name: &'static str) -> Self {
        Span {
            name,
            started: enabled().then(Instant::now),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(started) = self.started.take() {
            emit(self.name, EventKind::Span(started.elapsed()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Collector, NoopRecorder};

    #[test]
    fn no_recorder_means_disabled_and_free() {
        assert!(!enabled());
        count("scope.unrecorded", 1);
        sample("scope.unrecorded", 1.0);
        let _span = Span::enter("scope.unrecorded");
        // Nothing to assert beyond "did not panic": there is no sink.
    }

    #[test]
    fn noop_recorder_emits_nothing_and_reports_disabled() {
        let hit = with_recorder(Arc::new(NoopRecorder), || {
            count("scope.noop", 5);
            enabled()
        });
        assert!(!hit, "noop recorder must report disabled");
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = Arc::new(Collector::new());
        let inner = Arc::new(Collector::new());
        with_recorder(outer.clone(), || {
            count("scope.outer", 1);
            with_recorder(inner.clone(), || count("scope.inner", 1));
            count("scope.outer", 1);
        });
        assert!(!enabled(), "outermost scope must restore the empty slot");
        assert_eq!(outer.summary().counters["scope.outer"], 2);
        assert_eq!(inner.summary().counters["scope.inner"], 1);
        assert!(!outer.summary().counters.contains_key("scope.inner"));
    }

    #[test]
    fn scope_restores_across_panic() {
        let collector = Arc::new(Collector::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_recorder(collector.clone(), || panic!("boom"))
        }));
        assert!(result.is_err());
        assert!(!enabled(), "panic must not leak the installed recorder");
    }

    #[test]
    fn span_times_its_scope() {
        let collector = Arc::new(Collector::new());
        with_recorder(collector.clone(), || {
            let _span = Span::enter("scope.timed");
        });
        let summary = collector.summary();
        assert_eq!(summary.spans["scope.timed"].count, 1);
    }
}
