//! Deterministic aggregation of recorded events.

use crate::event::{Event, EventKind};
use crate::metrics::Histogram;
use std::collections::BTreeMap;
use std::time::Duration;

/// Aggregated timing of one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// How many spans closed under this name. Deterministic.
    pub count: u64,
    /// Total wall time across them. Nondeterministic — serializers must
    /// keep it under a strippable timing key.
    pub total: Duration,
}

/// Events folded into sorted maps, ready for deterministic
/// serialization: counter totals, sample series in emission order,
/// merged histograms, and span statistics.
///
/// Everything except [`SpanStats::total`] is a pure function of the
/// emission sequence, so two runs of a deterministic pipeline produce
/// equal summaries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Total events folded in.
    pub events: u64,
    /// Counter name → summed increments.
    pub counters: BTreeMap<&'static str, u64>,
    /// Sample name → values in emission order.
    pub samples: BTreeMap<&'static str, Vec<f64>>,
    /// Histogram name → merged histogram.
    pub histograms: BTreeMap<&'static str, Histogram>,
    /// Span name → closure count and total wall time.
    pub spans: BTreeMap<&'static str, SpanStats>,
}

impl TraceSummary {
    /// Aggregates a finished event sequence.
    pub fn from_events(events: impl IntoIterator<Item = Event>) -> Self {
        let mut summary = TraceSummary::default();
        for event in events {
            summary.record(event);
        }
        summary
    }

    /// Folds one event in.
    pub fn record(&mut self, event: Event) {
        self.events += 1;
        match event.kind {
            EventKind::Count(delta) => {
                *self.counters.entry(event.name).or_insert(0) += delta;
            }
            EventKind::Sample(value) => {
                self.samples.entry(event.name).or_default().push(value);
            }
            EventKind::Observe(value) => {
                self.histograms.entry(event.name).or_default().record(value);
            }
            EventKind::Span(elapsed) => {
                let stats = self.spans.entry(event.name).or_default();
                stats.count += 1;
                stats.total += elapsed;
            }
        }
    }

    /// Folds another summary in (counters add, samples append,
    /// histograms merge, spans accumulate).
    pub fn merge(&mut self, other: &TraceSummary) {
        self.events += other.events;
        for (&name, &delta) in &other.counters {
            *self.counters.entry(name).or_insert(0) += delta;
        }
        for (&name, values) in &other.samples {
            self.samples.entry(name).or_default().extend(values);
        }
        for (&name, histogram) in &other.histograms {
            self.histograms.entry(name).or_default().merge(histogram);
        }
        for (&name, stats) in &other.spans {
            let mine = self.spans.entry(name).or_default();
            mine.count += stats.count;
            mine.total += stats.total;
        }
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_by_kind() {
        let summary = TraceSummary::from_events([
            Event::new("c", EventKind::Count(2)),
            Event::new("c", EventKind::Count(3)),
            Event::new("s", EventKind::Sample(1.0)),
            Event::new("s", EventKind::Sample(0.5)),
            Event::new("h", EventKind::Observe(9)),
            Event::new("t", EventKind::Span(Duration::from_millis(2))),
            Event::new("t", EventKind::Span(Duration::from_millis(3))),
        ]);
        assert_eq!(summary.events, 7);
        assert_eq!(summary.counters["c"], 5);
        assert_eq!(summary.samples["s"], vec![1.0, 0.5]);
        assert_eq!(summary.histograms["h"].count(), 1);
        assert_eq!(summary.spans["t"].count, 2);
        assert_eq!(summary.spans["t"].total, Duration::from_millis(5));
    }

    #[test]
    fn merge_matches_concatenation() {
        let first = [
            Event::new("c", EventKind::Count(1)),
            Event::new("s", EventKind::Sample(1.0)),
        ];
        let second = [
            Event::new("c", EventKind::Count(4)),
            Event::new("s", EventKind::Sample(2.0)),
            Event::new("h", EventKind::Observe(3)),
        ];
        let mut merged = TraceSummary::from_events(first);
        merged.merge(&TraceSummary::from_events(second));
        let concatenated = TraceSummary::from_events(first.into_iter().chain(second));
        assert_eq!(merged, concatenated);
    }
}
