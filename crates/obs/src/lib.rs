//! Zero-dependency observability for the ParchMint pipeline.
//!
//! Instrumented code emits [`Event`]s — counter increments, numeric
//! samples, histogram observations, and span timings — through a
//! thread-local [`Recorder`] installed for the dynamic extent of a call
//! with [`with_recorder`]. When no recorder is installed (the default),
//! every emission is a single thread-local check and costs nothing
//! beyond it, so pipeline hot paths stay instrumented permanently.
//!
//! ```
//! use parchmint_obs::{self as obs, Collector};
//! use std::sync::Arc;
//!
//! let collector = Arc::new(Collector::new());
//! obs::with_recorder(collector.clone(), || {
//!     let _span = obs::Span::enter("demo.work");
//!     obs::count("demo.items", 3);
//!     obs::sample("demo.cost", 1.5);
//! });
//! let summary = collector.summary();
//! assert_eq!(summary.counters["demo.items"], 3);
//! assert_eq!(summary.spans["demo.work"].count, 1);
//! ```
//!
//! Metric names are `&'static str` by design: emission never allocates,
//! and aggregation keys stay interned for the process lifetime.

mod event;
mod metrics;
mod recorder;
mod scope;
mod summary;

pub use event::{Event, EventKind};
pub use metrics::{Counter, Histogram};
pub use recorder::{Collector, NoopRecorder, Recorder};
pub use scope::{count, enabled, observe, sample, with_recorder, Span};
pub use summary::{SpanStats, TraceSummary};
