//! Typed metric helpers: atomic counters and log-scale histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// A named monotonic counter for hot loops.
///
/// Instrumented code accumulates locally (one atomic add per increment,
/// no recorder lookup) and calls [`Counter::flush`] once at the end of
/// the hot region, turning millions of increments into a single event.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Emits the accumulated value as one [`crate::count`] event and
    /// resets to zero. A zero total still emits, so trace keys are
    /// stable across inputs.
    pub fn flush(&self) {
        crate::count(self.name, self.value.swap(0, Ordering::Relaxed));
    }
}

/// Bucket count for [`Histogram`]: bucket 0 holds zero, bucket `i`
/// (1..=64) holds values in `2^(i-1) .. 2^i`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed log2-scale histogram of `u64` observations.
///
/// Buckets are powers of two, so recording is branch-light
/// (`leading_zeros`) and merging is element-wise addition. Quantiles are
/// answered at bucket granularity (the bucket's inclusive upper bound),
/// which is the right precision for "how many node expansions does a
/// typical net cost" questions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The inclusive upper bound of a bucket.
    pub fn upper_bound(bucket: usize) -> u64 {
        match bucket {
            0 => 0,
            b if b >= 64 => u64::MAX,
            b => (1u64 << b) - 1,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observation, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The inclusive upper bound of the bucket containing the `q`
    /// quantile (`0.0..=1.0`); 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::upper_bound(bucket);
            }
        }
        Self::upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(bucket, &n)| (Self::upper_bound(bucket), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_flushes() {
        static MOVES: Counter = Counter::new("test.moves");
        MOVES.add(3);
        MOVES.add(4);
        assert_eq!(MOVES.get(), 7);
        MOVES.flush(); // no recorder installed: value still resets
        assert_eq!(MOVES.get(), 0);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1023, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.sum(), 2072);
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(
            buckets,
            vec![
                (0, 1),
                (1, 1),
                (3, 2),
                (7, 2),
                (15, 1),
                (1023, 1),
                (2047, 1)
            ]
        );
    }

    #[test]
    fn histogram_quantiles_and_merge() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(0.5), 63); // rank 50 lands in the 32..=63 bucket
        assert_eq!(h.quantile(1.0), 127);
        let mut other = Histogram::new();
        other.record(0);
        other.merge(&h);
        assert_eq!(other.count(), 101);
        assert_eq!(other.quantile(0.0), 0);
        assert!((h.mean() - 50.5).abs() < 1e-9);
    }
}
