//! The event vocabulary shared by all recorders.

use std::time::Duration;

/// The payload of one observability [`Event`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A monotonic counter increment (e.g. moves accepted).
    Count(u64),
    /// One deterministic numeric sample in emission order (e.g. the
    /// annealing cost at the end of a sweep).
    Sample(f64),
    /// One observation destined for a log-scale histogram (e.g. node
    /// expansions for a single routed net).
    Observe(u64),
    /// A span that closed after running for the carried wall-clock
    /// duration. Durations are nondeterministic; aggregations keep them
    /// separate from the deterministic kinds so traces can be compared
    /// byte-for-byte after a timing strip.
    Span(Duration),
}

/// One observability event emitted by instrumented pipeline code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Dotted static metric name, e.g. `pnr.place.accepted`.
    pub name: &'static str,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Convenience constructor.
    pub fn new(name: &'static str, kind: EventKind) -> Self {
        Event { name, kind }
    }
}
