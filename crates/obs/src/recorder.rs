//! Recorder trait and the two bundled implementations.

use crate::event::Event;
use crate::summary::TraceSummary;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// A sink for observability events.
///
/// Implementations must be cheap and thread-safe: pipeline stages run
/// inside the harness worker pool and emit from whichever thread claimed
/// the cell.
pub trait Recorder: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: Event);

    /// Whether emission should happen at all. Instrumented code consults
    /// this before doing any work that exists only to feed the recorder
    /// (starting span clocks, computing residuals, sampling costs).
    fn is_enabled(&self) -> bool {
        true
    }
}

/// The do-nothing recorder: events vanish and [`Recorder::is_enabled`]
/// reports `false`, so instrumentation skips its trace-only work.
///
/// Installing it is equivalent to installing no recorder; it exists so
/// call sites that always want *a* recorder value have a zero-cost one.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&self, _event: Event) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// Number of independent shards in a [`Collector`]. Eight covers the
/// harness pool sizes we run without measurable contention.
const SHARDS: usize = 8;

/// A thread-safe collecting recorder: events land in one of a fixed set
/// of `Mutex<Vec<Event>>` shards selected by the emitting thread's id, so
/// concurrent stages never contend on a single lock.
///
/// Within one thread, event order is preserved (a thread always hashes
/// to the same shard); [`Collector::summary`] folds shards in index
/// order, so single-threaded extents aggregate deterministically.
#[derive(Debug, Default)]
pub struct Collector {
    shards: [Mutex<Vec<Event>>; SHARDS],
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    fn shard(&self) -> &Mutex<Vec<Event>> {
        let mut hasher = DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Total number of events recorded so far.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("collector shard poisoned").len())
            .sum()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains every shard into one vector, shard order then emission
    /// order within each shard.
    pub fn drain(&self) -> Vec<Event> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.append(&mut shard.lock().expect("collector shard poisoned"));
        }
        all
    }

    /// Aggregates the recorded events into a [`TraceSummary`] without
    /// draining them.
    pub fn summary(&self) -> TraceSummary {
        let mut summary = TraceSummary::default();
        for shard in &self.shards {
            for event in shard.lock().expect("collector shard poisoned").iter() {
                summary.record(*event);
            }
        }
        summary
    }
}

impl Recorder for Collector {
    fn record(&self, event: Event) {
        self.shard()
            .lock()
            .expect("collector shard poisoned")
            .push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use std::sync::Arc;

    #[test]
    fn noop_recorder_is_disabled_and_silent() {
        let noop = NoopRecorder;
        assert!(!noop.is_enabled());
        noop.record(Event::new("x", EventKind::Count(1)));
        // Nothing observable: the noop recorder has no state at all.
    }

    #[test]
    fn collector_preserves_single_thread_order() {
        let c = Collector::new();
        c.record(Event::new("a", EventKind::Count(1)));
        c.record(Event::new("b", EventKind::Sample(2.0)));
        c.record(Event::new("a", EventKind::Count(3)));
        let events: Vec<&'static str> = c.drain().into_iter().map(|e| e.name).collect();
        assert_eq!(events, ["a", "b", "a"]);
        assert!(c.is_empty());
    }

    #[test]
    fn collector_is_deterministic_under_threads() {
        // Aggregated totals must not depend on scheduling; each thread
        // contributes a disjoint counter so the summary is exact.
        let run = || {
            let c = Arc::new(Collector::new());
            std::thread::scope(|scope| {
                for t in 0..4usize {
                    let c = Arc::clone(&c);
                    scope.spawn(move || {
                        let name: &'static str = ["t0", "t1", "t2", "t3"][t];
                        for _ in 0..100 {
                            c.record(Event::new(name, EventKind::Count(2)));
                        }
                    });
                }
            });
            c.summary()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b);
        assert_eq!(a.events, 400);
        for t in ["t0", "t1", "t2", "t3"] {
            assert_eq!(a.counters[t], 200);
        }
    }
}
