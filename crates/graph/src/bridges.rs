//! Bridge (cut-edge) detection.
//!
//! A bridge is an edge whose removal disconnects its component. In a
//! microfluidic netlist a bridge is a single-point-of-failure channel: if
//! it clogs, part of the chip becomes unreachable. The suite
//! characterization reports the bridge count as a robustness metric.
//!
//! Tarjan's algorithm via iterative DFS with discovery times and low-links;
//! parallel edges are handled correctly (a doubled edge is never a bridge).

use crate::graph::{EdgeIx, Graph, NodeIx};

/// All bridges of `graph`, in ascending edge order.
pub fn bridges<N, E>(graph: &Graph<N, E>) -> Vec<EdgeIx> {
    let n = graph.node_count();
    let mut discovery = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut timer = 0usize;
    let mut result = Vec::new();

    // Iterative DFS frame: (node, incoming edge, neighbour cursor).
    for root in graph.node_indices() {
        if discovery[root.0] != usize::MAX {
            continue;
        }
        let mut stack: Vec<(NodeIx, Option<EdgeIx>, Vec<EdgeIx>, usize)> = Vec::new();
        discovery[root.0] = timer;
        low[root.0] = timer;
        timer += 1;
        stack.push((root, None, graph.incident_edges(root).collect(), 0));

        while let Some((node, via, incident, cursor)) = stack.last_mut() {
            if *cursor >= incident.len() {
                // Post-order: propagate low-link to the parent.
                let node = *node;
                let via = *via;
                stack.pop();
                if let (Some(edge), Some((parent, ..))) = (via, stack.last()) {
                    let parent = *parent;
                    low[parent.0] = low[parent.0].min(low[node.0]);
                    if low[node.0] > discovery[parent.0] {
                        result.push(edge);
                    }
                }
                continue;
            }
            let edge = incident[*cursor];
            *cursor += 1;
            let node = *node;
            let via = *via;
            // Skip the edge we arrived by (once — parallel edges count).
            if via == Some(edge) {
                continue;
            }
            let next = graph.opposite(node, edge);
            if next == node {
                continue; // self-loop
            }
            if discovery[next.0] == usize::MAX {
                discovery[next.0] = timer;
                low[next.0] = timer;
                timer += 1;
                stack.push((next, Some(edge), graph.incident_edges(next).collect(), 0));
            } else {
                low[node.0] = low[node.0].min(discovery[next.0]);
            }
        }
    }
    result.sort_unstable();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_from(n: usize, edges: &[(usize, usize)]) -> Graph<(), ()> {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_node(());
        }
        for &(a, b) in edges {
            g.add_edge(NodeIx(a), NodeIx(b), ());
        }
        g
    }

    #[test]
    fn every_tree_edge_is_a_bridge() {
        let g = graph_from(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]);
        assert_eq!(bridges(&g).len(), 4);
    }

    #[test]
    fn cycle_has_no_bridges() {
        let g = graph_from(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn barbell_has_one_bridge() {
        // Two triangles joined by one edge: only the joiner is a bridge.
        let g = graph_from(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        let found = bridges(&g);
        assert_eq!(found, vec![EdgeIx(6)]);
    }

    #[test]
    fn parallel_edges_are_not_bridges() {
        let g = graph_from(2, &[(0, 1), (0, 1)]);
        assert!(bridges(&g).is_empty());
        let single = graph_from(2, &[(0, 1)]);
        assert_eq!(single.edge_count(), 1);
        assert_eq!(bridges(&single), vec![EdgeIx(0)]);
    }

    #[test]
    fn self_loops_are_not_bridges() {
        let g = graph_from(2, &[(0, 0), (0, 1)]);
        assert_eq!(bridges(&g), vec![EdgeIx(1)]);
    }

    #[test]
    fn disconnected_components_each_analyzed() {
        let g = graph_from(6, &[(0, 1), (2, 3), (3, 4), (4, 2), (4, 5)]);
        // Bridges: (0,1) and (4,5); the triangle contributes none.
        assert_eq!(bridges(&g).len(), 2);
    }

    #[test]
    fn empty_graph() {
        assert!(bridges(&Graph::<(), ()>::new()).is_empty());
    }

    /// Brute-force cross-check: an edge is a bridge iff removing it
    /// increases the component count.
    #[test]
    fn agrees_with_removal_oracle() {
        use crate::components::Components;
        // A moderately tangled fixed graph.
        let edges = [
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 3),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 6),
            (1, 9),
        ];
        let g = graph_from(10, &edges);
        let fast: Vec<usize> = bridges(&g).iter().map(|e| e.0).collect();
        let base_components = Components::of(&g).count();
        let mut oracle = Vec::new();
        for skip in 0..edges.len() {
            let reduced: Vec<(usize, usize)> = edges
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &e)| e)
                .collect();
            let h = graph_from(10, &reduced);
            if Components::of(&h).count() > base_components {
                oracle.push(skip);
            }
        }
        assert_eq!(fast, oracle);
    }
}
