//! Connected components and forest/cycle structure.

use crate::graph::{Graph, NodeIx};
use crate::union_find::UnionFind;

/// The partition of a graph into connected components.
#[derive(Debug, Clone)]
pub struct Components {
    /// `labels[i]` is the component index of node `i` (0-based, dense).
    labels: Vec<usize>,
    count: usize,
}

impl Components {
    /// Computes connected components via union-find.
    pub fn of<N, E>(graph: &Graph<N, E>) -> Self {
        let mut uf = UnionFind::new(graph.node_count());
        for e in graph.edge_indices() {
            let (a, b) = graph.edge_endpoints(e);
            uf.union(a.0, b.0);
        }
        // Densify the root labels into 0..count.
        let mut labels = vec![usize::MAX; graph.node_count()];
        let mut next = 0;
        let mut root_label = std::collections::HashMap::new();
        for (i, slot) in labels.iter_mut().enumerate() {
            let root = uf.find(i);
            let label = *root_label.entry(root).or_insert_with(|| {
                let l = next;
                next += 1;
                l
            });
            *slot = label;
        }
        Components {
            labels,
            count: next,
        }
    }

    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The component label of `node`.
    pub fn label(&self, node: NodeIx) -> usize {
        self.labels[node.0]
    }

    /// True when the two nodes share a component.
    pub fn same(&self, a: NodeIx, b: NodeIx) -> bool {
        self.labels[a.0] == self.labels[b.0]
    }

    /// Sizes of each component, indexed by label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// Nodes of the largest component (ties broken by lowest label).
    pub fn largest(&self) -> Vec<NodeIx> {
        let sizes = self.sizes();
        let Some((best, _)) = sizes
            .iter()
            .enumerate()
            .max_by_key(|&(i, s)| (*s, usize::MAX - i))
        else {
            return Vec::new();
        };
        self.labels
            .iter()
            .enumerate()
            .filter(|&(_, l)| *l == best)
            .map(|(i, _)| NodeIx(i))
            .collect()
    }
}

/// True when the graph contains no cycle (counting parallel edges and
/// self-loops as cycles).
pub fn is_forest<N, E>(graph: &Graph<N, E>) -> bool {
    let mut uf = UnionFind::new(graph.node_count());
    for e in graph.edge_indices() {
        let (a, b) = graph.edge_endpoints(e);
        if a == b || !uf.union(a.0, b.0) {
            return false;
        }
    }
    true
}

/// The cyclomatic number (circuit rank) `E - V + C`: the number of
/// independent cycles.
pub fn cyclomatic_number<N, E>(graph: &Graph<N, E>) -> usize {
    let c = Components::of(graph).count();
    graph.edge_count() + c - graph.node_count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_islands() -> Graph<(), ()> {
        // Island A: 0-1-2 (path); island B: 3-4 plus isolated 5.
        let mut g = Graph::new();
        for _ in 0..6 {
            g.add_node(());
        }
        g.add_edge(NodeIx(0), NodeIx(1), ());
        g.add_edge(NodeIx(1), NodeIx(2), ());
        g.add_edge(NodeIx(3), NodeIx(4), ());
        g
    }

    #[test]
    fn component_count_and_labels() {
        let g = two_islands();
        let c = Components::of(&g);
        assert_eq!(c.count(), 3);
        assert!(c.same(NodeIx(0), NodeIx(2)));
        assert!(!c.same(NodeIx(0), NodeIx(3)));
        assert!(!c.same(NodeIx(4), NodeIx(5)));
    }

    #[test]
    fn sizes_and_largest() {
        let g = two_islands();
        let c = Components::of(&g);
        let mut sizes = c.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
        let largest = c.largest();
        assert_eq!(largest.len(), 3);
        assert!(largest.contains(&NodeIx(0)));
    }

    #[test]
    fn empty_graph() {
        let g: Graph<(), ()> = Graph::new();
        let c = Components::of(&g);
        assert_eq!(c.count(), 0);
        assert!(c.largest().is_empty());
        assert!(is_forest(&g));
        assert_eq!(cyclomatic_number(&g), 0);
    }

    #[test]
    fn forest_detection() {
        let g = two_islands();
        assert!(is_forest(&g));
        let mut g = g;
        g.add_edge(NodeIx(0), NodeIx(2), ()); // closes a triangle
        assert!(!is_forest(&g));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        assert!(!is_forest(&g));
        assert_eq!(cyclomatic_number(&g), 1);
    }

    #[test]
    fn parallel_edge_is_a_cycle() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, b, ());
        assert!(!is_forest(&g));
        assert_eq!(cyclomatic_number(&g), 1);
    }

    #[test]
    fn cyclomatic_counts_independent_cycles() {
        let g = two_islands();
        assert_eq!(cyclomatic_number(&g), 0);
        let mut g = g;
        g.add_edge(NodeIx(0), NodeIx(2), ());
        g.add_edge(NodeIx(3), NodeIx(4), ());
        assert_eq!(cyclomatic_number(&g), 2);
    }
}
