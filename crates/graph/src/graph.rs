//! A compact undirected multigraph with typed node and edge payloads.
//!
//! This is the workhorse representation behind netlist analysis: adjacency
//! lists over dense integer indices, payloads stored alongside. It is
//! deliberately small — the benchmark suite's devices top out in the low
//! thousands of components — and favours clarity and exact invariants over
//! asymptotic heroics.

use std::fmt;

/// Index of a node within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeIx(pub usize);

/// Index of an edge within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeIx(pub usize);

impl fmt::Display for NodeIx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeIx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Node<N> {
    data: N,
    /// Incident edge indices (an edge appears twice for self-loops).
    incident: Vec<EdgeIx>,
}

#[derive(Debug, Clone)]
struct Edge<E> {
    data: E,
    a: NodeIx,
    b: NodeIx,
}

/// An undirected multigraph with node payloads `N` and edge payloads `E`.
///
/// Parallel edges and self-loops are allowed (netlists produce both: two
/// channels between the same pair of components are distinct nets).
///
/// # Examples
///
/// ```
/// use parchmint_graph::Graph;
///
/// let mut g: Graph<&str, u32> = Graph::new();
/// let a = g.add_node("a");
/// let b = g.add_node("b");
/// let e = g.add_edge(a, b, 7);
/// assert_eq!(g.degree(a), 1);
/// assert_eq!(g.edge_endpoints(e), (a, b));
/// assert_eq!(g[a], "a");
/// ```
#[derive(Debug, Clone)]
pub struct Graph<N, E = ()> {
    nodes: Vec<Node<N>>,
    edges: Vec<Edge<E>>,
}

impl<N, E> Default for Graph<N, E> {
    fn default() -> Self {
        Graph {
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }
}

impl<N, E> Graph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates an empty graph with preallocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Graph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a node carrying `data`, returning its index.
    pub fn add_node(&mut self, data: N) -> NodeIx {
        let ix = NodeIx(self.nodes.len());
        self.nodes.push(Node {
            data,
            incident: Vec::new(),
        });
        ix
    }

    /// Adds an undirected edge between `a` and `b` carrying `data`.
    ///
    /// # Panics
    ///
    /// Panics when either endpoint is out of bounds.
    pub fn add_edge(&mut self, a: NodeIx, b: NodeIx, data: E) -> EdgeIx {
        assert!(a.0 < self.nodes.len(), "node {a} out of bounds");
        assert!(b.0 < self.nodes.len(), "node {b} out of bounds");
        let ix = EdgeIx(self.edges.len());
        self.edges.push(Edge { data, a, b });
        self.nodes[a.0].incident.push(ix);
        if a != b {
            self.nodes[b.0].incident.push(ix);
        } else {
            // Count a self-loop twice toward degree, as is standard.
            self.nodes[a.0].incident.push(ix);
        }
        ix
    }

    /// Borrows a node's payload.
    pub fn node(&self, ix: NodeIx) -> &N {
        &self.nodes[ix.0].data
    }

    /// Mutably borrows a node's payload.
    pub fn node_mut(&mut self, ix: NodeIx) -> &mut N {
        &mut self.nodes[ix.0].data
    }

    /// Borrows an edge's payload.
    pub fn edge(&self, ix: EdgeIx) -> &E {
        &self.edges[ix.0].data
    }

    /// The two endpoints of an edge (equal for self-loops).
    pub fn edge_endpoints(&self, ix: EdgeIx) -> (NodeIx, NodeIx) {
        let e = &self.edges[ix.0];
        (e.a, e.b)
    }

    /// Degree of `ix` (self-loops count twice).
    pub fn degree(&self, ix: NodeIx) -> usize {
        self.nodes[ix.0].incident.len()
    }

    /// Iterates over all node indices.
    pub fn node_indices(&self) -> impl Iterator<Item = NodeIx> + '_ {
        (0..self.nodes.len()).map(NodeIx)
    }

    /// Iterates over all edge indices.
    pub fn edge_indices(&self) -> impl Iterator<Item = EdgeIx> + '_ {
        (0..self.edges.len()).map(EdgeIx)
    }

    /// Iterates over node payloads in index order.
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter().map(|n| &n.data)
    }

    /// Iterates over edges incident to `ix`.
    pub fn incident_edges(&self, ix: NodeIx) -> impl Iterator<Item = EdgeIx> + '_ {
        self.nodes[ix.0].incident.iter().copied()
    }

    /// Iterates over the neighbours of `ix` (with multiplicity; a self-loop
    /// yields `ix` twice).
    pub fn neighbors(&self, ix: NodeIx) -> impl Iterator<Item = NodeIx> + '_ {
        self.nodes[ix.0].incident.iter().map(move |&e| {
            let (a, b) = self.edge_endpoints(e);
            if a == ix {
                b
            } else {
                a
            }
        })
    }

    /// The opposite endpoint of `edge` as seen from `from`.
    pub fn opposite(&self, from: NodeIx, edge: EdgeIx) -> NodeIx {
        let (a, b) = self.edge_endpoints(edge);
        if a == from {
            b
        } else {
            a
        }
    }

    /// Finds the first node whose payload satisfies `pred`.
    pub fn find_node(&self, mut pred: impl FnMut(&N) -> bool) -> Option<NodeIx> {
        self.nodes.iter().position(|n| pred(&n.data)).map(NodeIx)
    }

    /// Sum of all degrees; equals `2 * edge_count()` (handshake lemma).
    pub fn degree_sum(&self) -> usize {
        self.nodes.iter().map(|n| n.incident.len()).sum()
    }
}

impl<N, E> std::ops::Index<NodeIx> for Graph<N, E> {
    type Output = N;
    fn index(&self, ix: NodeIx) -> &N {
        self.node(ix)
    }
}

impl<N, E> std::ops::Index<EdgeIx> for Graph<N, E> {
    type Output = E;
    fn index(&self, ix: EdgeIx) -> &E {
        self.edge(ix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph<u32, &'static str>, [NodeIx; 3]) {
        let mut g = Graph::new();
        let a = g.add_node(0);
        let b = g.add_node(1);
        let c = g.add_node(2);
        g.add_edge(a, b, "ab");
        g.add_edge(b, c, "bc");
        g.add_edge(c, a, "ca");
        (g, [a, b, c])
    }

    #[test]
    fn counts_and_degrees() {
        let (g, [a, b, c]) = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(a), 2);
        assert_eq!(g.degree(b), 2);
        assert_eq!(g.degree(c), 2);
        assert_eq!(g.degree_sum(), 2 * g.edge_count());
        assert!(!g.is_empty());
        assert!(Graph::<u8>::new().is_empty());
    }

    #[test]
    fn neighbors_and_opposite() {
        let (g, [a, b, c]) = triangle();
        let mut nbrs: Vec<usize> = g.neighbors(a).map(|n| n.0).collect();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![b.0, c.0]);
        let e = g.incident_edges(a).next().unwrap();
        let other = g.opposite(a, e);
        assert!(other == b || other == c);
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g: Graph<(), u8> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 2);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(a), 2);
        assert_eq!(g.neighbors(a).count(), 2);
    }

    #[test]
    fn self_loop_counts_twice() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let e = g.add_edge(a, a, ());
        assert_eq!(g.degree(a), 2);
        assert_eq!(g.edge_endpoints(e), (a, a));
        assert_eq!(g.degree_sum(), 2 * g.edge_count());
        let nbrs: Vec<NodeIx> = g.neighbors(a).collect();
        assert_eq!(nbrs, vec![a, a]);
    }

    #[test]
    fn payload_access() {
        let (mut g, [a, ..]) = triangle();
        assert_eq!(g[a], 0);
        *g.node_mut(a) = 42;
        assert_eq!(*g.node(a), 42);
        let e = EdgeIx(0);
        assert_eq!(g[e], "ab");
    }

    #[test]
    fn find_node() {
        let (g, [_, b, _]) = triangle();
        assert_eq!(g.find_node(|&n| n == 1), Some(b));
        assert_eq!(g.find_node(|&n| n == 99), None);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_edge_oob_panics() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeIx(5), ());
    }

    #[test]
    fn index_display() {
        assert_eq!(NodeIx(3).to_string(), "n3");
        assert_eq!(EdgeIx(9).to_string(), "e9");
    }

    #[test]
    fn iterators_cover_all() {
        let (g, _) = triangle();
        assert_eq!(g.node_indices().count(), 3);
        assert_eq!(g.edge_indices().count(), 3);
        let payloads: Vec<u32> = g.nodes().copied().collect();
        assert_eq!(payloads, vec![0, 1, 2]);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let g: Graph<u8, u8> = Graph::with_capacity(10, 20);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
