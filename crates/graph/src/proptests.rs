//! Property-based tests on the graph substrate.

use crate::bridges::bridges;
use crate::components::{cyclomatic_number, is_forest, Components};
use crate::graph::{Graph, NodeIx};
use crate::metrics::{degree_histogram, GraphMetrics};
use crate::traversal::{bfs_distances, bfs_order, dfs_order, shortest_path};
use crate::union_find::UnionFind;
use proptest::prelude::*;

/// An arbitrary graph as (node count, edge list with indices < n).
fn graph_strategy() -> impl Strategy<Value = Graph<(), ()>> {
    (1usize..24).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..48).prop_map(move |edges| {
            let mut graph: Graph<(), ()> = Graph::new();
            for _ in 0..n {
                graph.add_node(());
            }
            for (a, b) in edges {
                graph.add_edge(NodeIx(a), NodeIx(b), ());
            }
            graph
        })
    })
}

proptest! {
    #[test]
    fn handshake_lemma(graph in graph_strategy()) {
        prop_assert_eq!(graph.degree_sum(), 2 * graph.edge_count());
    }

    #[test]
    fn degree_histogram_sums_to_node_count(graph in graph_strategy()) {
        let histogram = degree_histogram(&graph);
        prop_assert_eq!(histogram.iter().sum::<usize>(), graph.node_count());
    }

    #[test]
    fn traversals_cover_exactly_one_component(graph in graph_strategy()) {
        let components = Components::of(&graph);
        let start = NodeIx(0);
        let bfs = bfs_order(&graph, start);
        let dfs = dfs_order(&graph, start);
        let expected = components
            .sizes()[components.label(start)];
        prop_assert_eq!(bfs.len(), expected);
        prop_assert_eq!(dfs.len(), expected);
        // No repeats.
        let mut seen = std::collections::HashSet::new();
        for n in &bfs {
            prop_assert!(seen.insert(n.0));
        }
    }

    #[test]
    fn bfs_distances_agree_with_components(graph in graph_strategy()) {
        let components = Components::of(&graph);
        let start = NodeIx(0);
        let distances = bfs_distances(&graph, start);
        for node in graph.node_indices() {
            prop_assert_eq!(
                distances[node.0].is_some(),
                components.same(start, node),
                "reachability mismatch at {}", node
            );
        }
    }

    #[test]
    fn bfs_distance_is_tight_on_neighbors(graph in graph_strategy()) {
        let distances = bfs_distances(&graph, NodeIx(0));
        for edge in graph.edge_indices() {
            let (a, b) = graph.edge_endpoints(edge);
            if let (Some(da), Some(db)) = (distances[a.0], distances[b.0]) {
                prop_assert!(da.abs_diff(db) <= 1, "edge ({a},{b}) stretches BFS levels");
            }
        }
    }

    #[test]
    fn shortest_path_matches_bfs_distance(graph in graph_strategy()) {
        let distances = bfs_distances(&graph, NodeIx(0));
        for node in graph.node_indices() {
            match (shortest_path(&graph, NodeIx(0), node), distances[node.0]) {
                (Some(path), Some(d)) => prop_assert_eq!(path.len(), d + 1),
                (None, None) => {}
                (p, d) => prop_assert!(false, "disagreement at {}: path={:?} dist={:?}", node, p.map(|p| p.len()), d),
            }
        }
    }

    #[test]
    fn cyclomatic_identity(graph in graph_strategy()) {
        let c = Components::of(&graph).count();
        prop_assert_eq!(
            cyclomatic_number(&graph) as i64,
            graph.edge_count() as i64 + c as i64 - graph.node_count() as i64
        );
        // Forests have rank zero and vice versa.
        prop_assert_eq!(is_forest(&graph), cyclomatic_number(&graph) == 0);
    }

    #[test]
    fn metrics_match_direct_computation(graph in graph_strategy()) {
        let metrics = GraphMetrics::of(&graph);
        prop_assert_eq!(metrics.nodes, graph.node_count());
        prop_assert_eq!(metrics.edges, graph.edge_count());
        prop_assert_eq!(metrics.components, Components::of(&graph).count());
        let degrees: Vec<usize> = graph.node_indices().map(|n| graph.degree(n)).collect();
        prop_assert_eq!(metrics.max_degree, degrees.iter().copied().max().unwrap_or(0));
        prop_assert_eq!(metrics.min_degree, degrees.iter().copied().min().unwrap_or(0));
    }

    #[test]
    fn union_find_agrees_with_graph_components(graph in graph_strategy()) {
        let components = Components::of(&graph);
        let mut uf = UnionFind::new(graph.node_count());
        for e in graph.edge_indices() {
            let (a, b) = graph.edge_endpoints(e);
            uf.union(a.0, b.0);
        }
        prop_assert_eq!(uf.set_count(), components.count());
        for a in graph.node_indices() {
            for b in graph.node_indices() {
                prop_assert_eq!(uf.connected(a.0, b.0), components.same(a, b));
            }
        }
    }

    #[test]
    fn bridges_match_removal_oracle(graph in graph_strategy()) {
        let fast: Vec<usize> = bridges(&graph).iter().map(|e| e.0).collect();
        let base = Components::of(&graph).count();
        let mut oracle = Vec::new();
        for skip in graph.edge_indices() {
            let mut reduced: Graph<(), ()> = Graph::new();
            for _ in 0..graph.node_count() {
                reduced.add_node(());
            }
            for e in graph.edge_indices() {
                if e != skip {
                    let (a, b) = graph.edge_endpoints(e);
                    reduced.add_edge(a, b, ());
                }
            }
            if Components::of(&reduced).count() > base {
                oracle.push(skip.0);
            }
        }
        prop_assert_eq!(fast, oracle);
    }

    #[test]
    fn largest_component_is_the_largest(graph in graph_strategy()) {
        let components = Components::of(&graph);
        let largest = components.largest();
        let sizes = components.sizes();
        prop_assert_eq!(largest.len(), sizes.iter().copied().max().unwrap_or(0));
        // All members share one label.
        if let Some(first) = largest.first() {
            let label = components.label(*first);
            prop_assert!(largest.iter().all(|n| components.label(*n) == label));
        }
    }
}
