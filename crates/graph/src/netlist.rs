//! Lowering a ParchMint device to its netlist graph.
//!
//! Nodes are components; each connection contributes one edge from its
//! source component to every sink component (star expansion of the
//! hyperedge). The edge payload records the originating connection, so
//! analyses can map graph structure back to the device.

use crate::graph::{Graph, NodeIx};
use parchmint::{ComponentId, ConnectionId, Device, LayerType};
use std::collections::HashMap;

/// The component-connectivity graph of a device.
#[derive(Debug, Clone)]
pub struct Netlist {
    graph: Graph<ComponentId, ConnectionId>,
    index: HashMap<ComponentId, NodeIx>,
}

impl Netlist {
    /// Builds the netlist graph over every layer of `device`, including
    /// valve-coupling edges: a valve component physically sits on the
    /// channel it pinches, so each valve binding contributes an edge from
    /// the valve component to the controlled connection's source component
    /// (labelled with that connection).
    pub fn from_device(device: &Device) -> Self {
        Self::build(device, |_| true, true)
    }

    /// Builds the netlist graph restricted to connections on layers of the
    /// given type (commonly [`LayerType::Flow`] to analyse the fluid network
    /// without control plumbing). Valve-coupling edges are cross-layer and
    /// therefore excluded here.
    pub fn from_device_layer(device: &Device, layer_type: LayerType) -> Self {
        let matching: Vec<&str> = device
            .layers
            .iter()
            .filter(|l| l.layer_type == layer_type)
            .map(|l| l.id.as_str())
            .collect();
        Self::build(device, |layer| matching.contains(&layer), false)
    }

    fn build(
        device: &Device,
        mut include_layer: impl FnMut(&str) -> bool,
        include_valves: bool,
    ) -> Self {
        let mut graph = Graph::with_capacity(device.components.len(), device.connections.len());
        let mut index = HashMap::with_capacity(device.components.len());
        for component in &device.components {
            let ix = graph.add_node(component.id.clone());
            index.insert(component.id.clone(), ix);
        }
        for connection in &device.connections {
            if !include_layer(connection.layer.as_str()) {
                continue;
            }
            let Some(&source) = index.get(&connection.source.component) else {
                continue; // dangling references are the validator's business
            };
            for sink in &connection.sinks {
                let Some(&dst) = index.get(&sink.component) else {
                    continue;
                };
                graph.add_edge(source, dst, connection.id.clone());
            }
        }
        if include_valves {
            for valve in &device.valves {
                let (Some(&valve_node), Some(controlled)) = (
                    index.get(&valve.component),
                    device.connection(valve.controls.as_str()),
                ) else {
                    continue;
                };
                if let Some(&anchor) = index.get(&controlled.source.component) {
                    graph.add_edge(valve_node, anchor, valve.controls.clone());
                }
            }
        }
        Netlist { graph, index }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph<ComponentId, ConnectionId> {
        &self.graph
    }

    /// The graph node representing `component`, when present.
    pub fn node_of(&self, component: &ComponentId) -> Option<NodeIx> {
        self.index.get(component).copied()
    }

    /// The component at a graph node.
    pub fn component_at(&self, node: NodeIx) -> &ComponentId {
        self.graph.node(node)
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of expanded (two-terminal) edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parchmint::geometry::Span;
    use parchmint::{Component, Connection, Entity, Layer, Port, Target};

    fn fan_device() -> Device {
        // tree t1 fans out to sinks a and b on flow; control line on c0.
        Device::builder("fan")
            .layer(Layer::new("f0", "flow", LayerType::Flow))
            .layer(Layer::new("c0", "control", LayerType::Control))
            .component(
                Component::new("t1", "tree", Entity::YTree, ["f0"], Span::square(100))
                    .with_port(Port::new("in", "f0", 0, 50))
                    .with_port(Port::new("o1", "f0", 100, 25))
                    .with_port(Port::new("o2", "f0", 100, 75)),
            )
            .component(
                Component::new("a", "a", Entity::ReactionChamber, ["f0"], Span::square(100))
                    .with_port(Port::new("in", "f0", 0, 50)),
            )
            .component(
                Component::new("b", "b", Entity::ReactionChamber, ["f0"], Span::square(100))
                    .with_port(Port::new("in", "f0", 0, 50)),
            )
            .component(
                Component::new("v", "valve", Entity::Valve, ["c0"], Span::square(30))
                    .with_port(Port::new("p", "c0", 0, 15)),
            )
            .connection(Connection::new(
                "net1",
                "fanout",
                "f0",
                Target::new("t1", "in"),
                [Target::new("a", "in"), Target::new("b", "in")],
            ))
            .connection(Connection::new(
                "ctl1",
                "actuation",
                "c0",
                Target::new("v", "p"),
                [Target::new("t1", "in")],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn star_expansion_of_fanout() {
        let d = fan_device();
        let n = Netlist::from_device(&d);
        assert_eq!(n.component_count(), 4);
        // net1 contributes 2 edges (t1→a, t1→b); ctl1 contributes 1.
        assert_eq!(n.edge_count(), 3);
        let t1 = n.node_of(&"t1".into()).unwrap();
        assert_eq!(n.graph().degree(t1), 3);
    }

    #[test]
    fn edges_remember_their_connection() {
        let d = fan_device();
        let n = Netlist::from_device(&d);
        let labels: Vec<&str> = n
            .graph()
            .edge_indices()
            .map(|e| n.graph().edge(e).as_str())
            .collect();
        assert_eq!(labels, vec!["net1", "net1", "ctl1"]);
    }

    #[test]
    fn layer_restriction() {
        let d = fan_device();
        let flow = Netlist::from_device_layer(&d, LayerType::Flow);
        assert_eq!(flow.edge_count(), 2);
        let control = Netlist::from_device_layer(&d, LayerType::Control);
        assert_eq!(control.edge_count(), 1);
        // All components appear as nodes regardless of restriction.
        assert_eq!(flow.component_count(), 4);
    }

    #[test]
    fn node_component_round_trip() {
        let d = fan_device();
        let n = Netlist::from_device(&d);
        for c in &d.components {
            let ix = n.node_of(&c.id).unwrap();
            assert_eq!(n.component_at(ix), &c.id);
        }
        assert!(n.node_of(&"ghost".into()).is_none());
    }

    #[test]
    fn empty_device_yields_empty_graph() {
        let d = Device::new("empty");
        let n = Netlist::from_device(&d);
        assert_eq!(n.component_count(), 0);
        assert_eq!(n.edge_count(), 0);
    }
}
