//! Lowering a ParchMint device to its netlist graph.
//!
//! Nodes are components; each connection contributes one edge from its
//! source component to every sink component (star expansion of the
//! hyperedge). The edge payload records the originating connection, so
//! analyses can map graph structure back to the device.

use crate::graph::{Graph, NodeIx};
use parchmint::{CompIx, CompiledDevice, ComponentId, ConnectionId, LayerType};
use std::collections::HashMap;

/// The component-connectivity graph of a device.
#[derive(Debug, Clone)]
pub struct Netlist {
    graph: Graph<ComponentId, ConnectionId>,
    index: HashMap<ComponentId, NodeIx>,
}

impl Netlist {
    /// Projects the full netlist graph (all layers, valve-coupling edges
    /// included) from a compiled device's precomputed endpoint tables:
    /// a valve component physically sits on the channel it pinches, so
    /// each valve binding contributes an edge from the valve component
    /// to the controlled connection's source component (labelled with
    /// that connection).
    pub fn new(compiled: &CompiledDevice) -> Self {
        Self::project(compiled, None, true)
    }

    /// Projects the netlist graph restricted to connections on layers of
    /// the given type (commonly [`LayerType::Flow`] to analyse the fluid
    /// network without control plumbing). Valve-coupling edges are
    /// cross-layer and therefore excluded here.
    pub fn new_layer(compiled: &CompiledDevice, layer_type: LayerType) -> Self {
        Self::project(compiled, Some(layer_type), false)
    }

    /// The projection itself: nodes are components in declaration order,
    /// each included connection contributes one edge per resolved sink
    /// (star expansion), in declaration order. Dangling endpoints are
    /// skipped — they are the validator's business.
    fn project(
        compiled: &CompiledDevice,
        only_layer_type: Option<LayerType>,
        include_valves: bool,
    ) -> Self {
        let device = compiled.device();
        let mut graph = Graph::with_capacity(device.components.len(), device.connections.len());
        let mut index = HashMap::with_capacity(device.components.len());
        let mut nodes = Vec::with_capacity(device.components.len());
        for component in &device.components {
            let ix = graph.add_node(component.id.clone());
            index.insert(component.id.clone(), ix);
            nodes.push(ix);
        }
        let node_of = |c: CompIx| nodes[c.index()];
        for conn in compiled.connections() {
            if let Some(wanted) = only_layer_type {
                let on_wanted_layer = compiled
                    .connection_layer(conn)
                    .is_some_and(|l| compiled.layer(l).layer_type == wanted);
                if !on_wanted_layer {
                    continue;
                }
            }
            let Some(source) = compiled.source(conn).component else {
                continue;
            };
            let id = &compiled.connection(conn).id;
            for sink in compiled.sinks(conn) {
                let Some(dst) = sink.component else {
                    continue;
                };
                graph.add_edge(node_of(source), node_of(dst), id.clone());
            }
        }
        if include_valves {
            for (valve, valve_comp, controlled) in compiled.valves() {
                let (Some(valve_comp), Some(controlled)) = (valve_comp, controlled) else {
                    continue;
                };
                if let Some(anchor) = compiled.source(controlled).component {
                    graph.add_edge(node_of(valve_comp), node_of(anchor), valve.controls.clone());
                }
            }
        }
        Netlist { graph, index }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph<ComponentId, ConnectionId> {
        &self.graph
    }

    /// The graph node representing `component`, when present.
    pub fn node_of(&self, component: &ComponentId) -> Option<NodeIx> {
        self.index.get(component).copied()
    }

    /// The component at a graph node.
    pub fn component_at(&self, node: NodeIx) -> &ComponentId {
        self.graph.node(node)
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of expanded (two-terminal) edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parchmint::geometry::Span;
    use parchmint::{Component, Connection, Device, Entity, Layer, Port, Target};

    fn fan_device() -> Device {
        // tree t1 fans out to sinks a and b on flow; control line on c0.
        Device::builder("fan")
            .layer(Layer::new("f0", "flow", LayerType::Flow))
            .layer(Layer::new("c0", "control", LayerType::Control))
            .component(
                Component::new("t1", "tree", Entity::YTree, ["f0"], Span::square(100))
                    .with_port(Port::new("in", "f0", 0, 50))
                    .with_port(Port::new("o1", "f0", 100, 25))
                    .with_port(Port::new("o2", "f0", 100, 75)),
            )
            .component(
                Component::new("a", "a", Entity::ReactionChamber, ["f0"], Span::square(100))
                    .with_port(Port::new("in", "f0", 0, 50)),
            )
            .component(
                Component::new("b", "b", Entity::ReactionChamber, ["f0"], Span::square(100))
                    .with_port(Port::new("in", "f0", 0, 50)),
            )
            .component(
                Component::new("v", "valve", Entity::Valve, ["c0"], Span::square(30))
                    .with_port(Port::new("p", "c0", 0, 15)),
            )
            .connection(Connection::new(
                "net1",
                "fanout",
                "f0",
                Target::new("t1", "in"),
                [Target::new("a", "in"), Target::new("b", "in")],
            ))
            .connection(Connection::new(
                "ctl1",
                "actuation",
                "c0",
                Target::new("v", "p"),
                [Target::new("t1", "in")],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn star_expansion_of_fanout() {
        let d = fan_device();
        let n = Netlist::new(&CompiledDevice::from_ref(&d));
        assert_eq!(n.component_count(), 4);
        // net1 contributes 2 edges (t1→a, t1→b); ctl1 contributes 1.
        assert_eq!(n.edge_count(), 3);
        let t1 = n.node_of(&"t1".into()).unwrap();
        assert_eq!(n.graph().degree(t1), 3);
    }

    #[test]
    fn edges_remember_their_connection() {
        let d = fan_device();
        let n = Netlist::new(&CompiledDevice::from_ref(&d));
        let labels: Vec<&str> = n
            .graph()
            .edge_indices()
            .map(|e| n.graph().edge(e).as_str())
            .collect();
        assert_eq!(labels, vec!["net1", "net1", "ctl1"]);
    }

    #[test]
    fn layer_restriction() {
        let d = fan_device();
        let flow = Netlist::new_layer(&CompiledDevice::from_ref(&d), LayerType::Flow);
        assert_eq!(flow.edge_count(), 2);
        let control = Netlist::new_layer(&CompiledDevice::from_ref(&d), LayerType::Control);
        assert_eq!(control.edge_count(), 1);
        // All components appear as nodes regardless of restriction.
        assert_eq!(flow.component_count(), 4);
    }

    #[test]
    fn node_component_round_trip() {
        let d = fan_device();
        let n = Netlist::new(&CompiledDevice::from_ref(&d));
        for c in &d.components {
            let ix = n.node_of(&c.id).unwrap();
            assert_eq!(n.component_at(ix), &c.id);
        }
        assert!(n.node_of(&"ghost".into()).is_none());
    }

    #[test]
    fn empty_device_yields_empty_graph() {
        let d = Device::new("empty");
        let n = Netlist::new(&CompiledDevice::from_ref(&d));
        assert_eq!(n.component_count(), 0);
        assert_eq!(n.edge_count(), 0);
    }
}
