//! Aggregate structural metrics of a graph.
//!
//! These are the figures the suite-characterization table reports for each
//! benchmark: size, degree statistics, connectivity, cycle structure, and a
//! planarity bound check (routable single-layer devices must be planar, so
//! `E ≤ 3V − 6` is a cheap necessary condition worth surfacing).

use crate::components::{cyclomatic_number, Components};
use crate::graph::Graph;
use crate::traversal::bfs_distances;
use serde::{Deserialize, Serialize};

/// Summary statistics of a graph's structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphMetrics {
    /// Node count.
    pub nodes: usize,
    /// Edge count (after hyperedge star expansion).
    pub edges: usize,
    /// Number of connected components.
    pub components: usize,
    /// Minimum node degree (0 for an empty graph).
    pub min_degree: usize,
    /// Maximum node degree (0 for an empty graph).
    pub max_degree: usize,
    /// Mean node degree (0 for an empty graph).
    pub mean_degree: f64,
    /// Longest shortest-path (hops) within the largest component.
    pub diameter: usize,
    /// Circuit rank `E − V + C`.
    pub cyclomatic: usize,
    /// Whether the edge count satisfies the planar bound `E ≤ 3V − 6`
    /// (vacuously true for `V < 3`). Necessary, not sufficient.
    pub satisfies_planar_bound: bool,
}

impl GraphMetrics {
    /// Computes all metrics for `graph`.
    ///
    /// Diameter is exact, computed by BFS from every node of the largest
    /// component; fine for benchmark-scale graphs (thousands of nodes).
    pub fn of<N, E>(graph: &Graph<N, E>) -> Self {
        let nodes = graph.node_count();
        let edges = graph.edge_count();
        let comps = Components::of(graph);

        let (mut min_degree, mut max_degree) = (usize::MAX, 0);
        for n in graph.node_indices() {
            let d = graph.degree(n);
            min_degree = min_degree.min(d);
            max_degree = max_degree.max(d);
        }
        if nodes == 0 {
            min_degree = 0;
        }
        let mean_degree = if nodes == 0 {
            0.0
        } else {
            graph.degree_sum() as f64 / nodes as f64
        };

        let mut diameter = 0;
        for &n in &comps.largest() {
            let far = bfs_distances(graph, n)
                .into_iter()
                .flatten()
                .max()
                .unwrap_or(0);
            diameter = diameter.max(far);
        }

        let satisfies_planar_bound = nodes < 3 || edges <= 3 * nodes - 6;

        GraphMetrics {
            nodes,
            edges,
            components: comps.count(),
            min_degree,
            max_degree,
            mean_degree,
            diameter,
            cyclomatic: cyclomatic_number(graph),
            satisfies_planar_bound,
        }
    }

    /// True when every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        self.components <= 1
    }
}

/// Histogram of node degrees: `histogram[d]` counts nodes of degree `d`.
pub fn degree_histogram<N, E>(graph: &Graph<N, E>) -> Vec<usize> {
    let mut histogram = Vec::new();
    for n in graph.node_indices() {
        let d = graph.degree(n);
        if histogram.len() <= d {
            histogram.resize(d + 1, 0);
        }
        histogram[d] += 1;
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeIx;

    fn path(n: usize) -> Graph<(), ()> {
        let mut g = Graph::new();
        for _ in 0..n {
            g.add_node(());
        }
        for i in 1..n {
            g.add_edge(NodeIx(i - 1), NodeIx(i), ());
        }
        g
    }

    #[test]
    fn path_metrics() {
        let m = GraphMetrics::of(&path(5));
        assert_eq!(m.nodes, 5);
        assert_eq!(m.edges, 4);
        assert_eq!(m.components, 1);
        assert!(m.is_connected());
        assert_eq!(m.min_degree, 1);
        assert_eq!(m.max_degree, 2);
        assert!((m.mean_degree - 1.6).abs() < 1e-12);
        assert_eq!(m.diameter, 4);
        assert_eq!(m.cyclomatic, 0);
        assert!(m.satisfies_planar_bound);
    }

    #[test]
    fn empty_graph_metrics() {
        let m = GraphMetrics::of(&Graph::<(), ()>::new());
        assert_eq!(m.nodes, 0);
        assert_eq!(m.edges, 0);
        assert_eq!(m.min_degree, 0);
        assert_eq!(m.max_degree, 0);
        assert_eq!(m.mean_degree, 0.0);
        assert_eq!(m.diameter, 0);
        assert!(m.satisfies_planar_bound);
    }

    #[test]
    fn disconnected_diameter_uses_largest_component() {
        let mut g = path(4); // diameter 3
        g.add_node(()); // isolated
        let m = GraphMetrics::of(&g);
        assert_eq!(m.components, 2);
        assert!(!m.is_connected());
        assert_eq!(m.diameter, 3);
        assert_eq!(m.min_degree, 0);
    }

    #[test]
    fn dense_graph_fails_planar_bound() {
        // K5: 5 nodes, 10 edges > 3*5-6 = 9.
        let mut g: Graph<(), ()> = Graph::new();
        for _ in 0..5 {
            g.add_node(());
        }
        for i in 0..5 {
            for j in (i + 1)..5 {
                g.add_edge(NodeIx(i), NodeIx(j), ());
            }
        }
        let m = GraphMetrics::of(&g);
        assert!(!m.satisfies_planar_bound);
        assert_eq!(m.cyclomatic, 6);
        assert_eq!(m.diameter, 1);
    }

    #[test]
    fn tiny_graphs_vacuously_planar() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, b, ());
        g.add_edge(a, b, ());
        assert!(GraphMetrics::of(&g).satisfies_planar_bound);
    }

    #[test]
    fn degree_histogram_counts() {
        let g = path(4); // degrees 1,2,2,1
        assert_eq!(degree_histogram(&g), vec![0, 2, 2]);
        assert!(degree_histogram(&Graph::<(), ()>::new()).is_empty());
    }
}
