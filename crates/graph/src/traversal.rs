//! Breadth-first and depth-first traversal.

use crate::graph::{Graph, NodeIx};
use std::collections::VecDeque;

/// Breadth-first order from `start`, visiting only `start`'s component.
pub fn bfs_order<N, E>(graph: &Graph<N, E>, start: NodeIx) -> Vec<NodeIx> {
    let mut order = Vec::new();
    let mut seen = vec![false; graph.node_count()];
    let mut queue = VecDeque::new();
    seen[start.0] = true;
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        order.push(n);
        for nbr in graph.neighbors(n) {
            if !seen[nbr.0] {
                seen[nbr.0] = true;
                queue.push_back(nbr);
            }
        }
    }
    order
}

/// Depth-first (preorder) from `start`, visiting only `start`'s component.
pub fn dfs_order<N, E>(graph: &Graph<N, E>, start: NodeIx) -> Vec<NodeIx> {
    let mut order = Vec::new();
    let mut seen = vec![false; graph.node_count()];
    let mut stack = vec![start];
    while let Some(n) = stack.pop() {
        if seen[n.0] {
            continue;
        }
        seen[n.0] = true;
        order.push(n);
        // Push in reverse so lower-indexed neighbours pop first.
        let nbrs: Vec<NodeIx> = graph.neighbors(n).collect();
        for nbr in nbrs.into_iter().rev() {
            if !seen[nbr.0] {
                stack.push(nbr);
            }
        }
    }
    order
}

/// Unweighted hop distances from `start`; `None` for unreachable nodes.
pub fn bfs_distances<N, E>(graph: &Graph<N, E>, start: NodeIx) -> Vec<Option<usize>> {
    let mut dist = vec![None; graph.node_count()];
    let mut queue = VecDeque::new();
    dist[start.0] = Some(0);
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        let d = dist[n.0].expect("queued nodes have distances");
        for nbr in graph.neighbors(n) {
            if dist[nbr.0].is_none() {
                dist[nbr.0] = Some(d + 1);
                queue.push_back(nbr);
            }
        }
    }
    dist
}

/// A shortest hop path from `start` to `goal`, inclusive, or `None` when
/// unreachable.
pub fn shortest_path<N, E>(
    graph: &Graph<N, E>,
    start: NodeIx,
    goal: NodeIx,
) -> Option<Vec<NodeIx>> {
    let mut prev: Vec<Option<NodeIx>> = vec![None; graph.node_count()];
    let mut seen = vec![false; graph.node_count()];
    let mut queue = VecDeque::new();
    seen[start.0] = true;
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        if n == goal {
            let mut path = vec![goal];
            let mut cur = goal;
            while let Some(p) = prev[cur.0] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for nbr in graph.neighbors(n) {
            if !seen[nbr.0] {
                seen[nbr.0] = true;
                prev[nbr.0] = Some(n);
                queue.push_back(nbr);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 - 1 - 2
    ///     |
    ///     3       4 (isolated)
    fn sample() -> Graph<(), ()> {
        let mut g = Graph::new();
        for _ in 0..5 {
            g.add_node(());
        }
        g.add_edge(NodeIx(0), NodeIx(1), ());
        g.add_edge(NodeIx(1), NodeIx(2), ());
        g.add_edge(NodeIx(1), NodeIx(3), ());
        g
    }

    #[test]
    fn bfs_visits_component_in_level_order() {
        let g = sample();
        let order = bfs_order(&g, NodeIx(0));
        assert_eq!(order, vec![NodeIx(0), NodeIx(1), NodeIx(2), NodeIx(3)]);
    }

    #[test]
    fn dfs_visits_whole_component_once() {
        let g = sample();
        let order = dfs_order(&g, NodeIx(0));
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], NodeIx(0));
        let mut sorted: Vec<usize> = order.iter().map(|n| n.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn distances() {
        let g = sample();
        let d = bfs_distances(&g, NodeIx(0));
        assert_eq!(d[0], Some(0));
        assert_eq!(d[1], Some(1));
        assert_eq!(d[2], Some(2));
        assert_eq!(d[3], Some(2));
        assert_eq!(d[4], None, "isolated node unreachable");
    }

    #[test]
    fn shortest_path_found() {
        let g = sample();
        let p = shortest_path(&g, NodeIx(0), NodeIx(3)).unwrap();
        assert_eq!(p, vec![NodeIx(0), NodeIx(1), NodeIx(3)]);
    }

    #[test]
    fn shortest_path_to_self_is_singleton() {
        let g = sample();
        assert_eq!(
            shortest_path(&g, NodeIx(2), NodeIx(2)).unwrap(),
            vec![NodeIx(2)]
        );
    }

    #[test]
    fn shortest_path_unreachable_is_none() {
        let g = sample();
        assert!(shortest_path(&g, NodeIx(0), NodeIx(4)).is_none());
    }

    #[test]
    fn cycle_does_not_trap_traversal() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        g.add_edge(c, a, ());
        assert_eq!(bfs_order(&g, a).len(), 3);
        assert_eq!(dfs_order(&g, a).len(), 3);
    }
}
