//! Disjoint-set forest (union-find) with path halving and union by size.

/// A disjoint-set forest over `0..len` elements.
///
/// # Examples
///
/// ```
/// use parchmint_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(uf.union(2, 3));
/// assert!(!uf.union(1, 0), "already joined");
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(0, 2));
/// assert_eq!(uf.set_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    sets: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        UnionFind {
            parent: (0..len).collect(),
            size: vec![1; len],
            sets: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// The canonical representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets holding `a` and `b`; returns `true` when they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.sets -= 1;
        true
    }

    /// True when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set holding `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let root = self.find(x);
        self.size[root]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.len(), 3);
        assert_eq!(uf.set_count(), 3);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.set_size(2), 1);
        assert!(!uf.is_empty());
        assert!(UnionFind::new(0).is_empty());
    }

    #[test]
    fn chain_union() {
        let mut uf = UnionFind::new(5);
        for i in 0..4 {
            assert!(uf.union(i, i + 1));
        }
        assert_eq!(uf.set_count(), 1);
        assert!(uf.connected(0, 4));
        assert_eq!(uf.set_size(3), 5);
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new(2);
        assert!(uf.union(0, 1));
        assert!(!uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.set_count(), 1);
    }

    #[test]
    fn self_union_is_noop() {
        let mut uf = UnionFind::new(2);
        assert!(!uf.union(1, 1));
        assert_eq!(uf.set_count(), 2);
    }

    #[test]
    fn find_is_canonical() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(3, 4);
        let r0 = uf.find(0);
        assert_eq!(uf.find(1), r0);
        assert_eq!(uf.find(2), r0);
        assert_ne!(uf.find(3), r0);
        assert_ne!(uf.find(5), r0);
    }
}
