//! # parchmint-graph
//!
//! Netlist graph substrate for ParchMint devices: a compact undirected
//! multigraph, classic traversals and connectivity algorithms, and the
//! lowering from a [`parchmint::Device`] to its component-connectivity
//! graph ([`Netlist`]).
//!
//! The benchmark paper motivates the suite with *"analysis of algorithmic
//! quality"*; that analysis needs structural ground truth — connectivity,
//! degree distributions, diameters, cycle structure, planarity bounds —
//! which this crate provides ([`GraphMetrics`]).
//!
//! ```
//! use parchmint_graph::{Graph, GraphMetrics};
//!
//! let mut g: Graph<&str> = Graph::new();
//! let a = g.add_node("inlet");
//! let b = g.add_node("mixer");
//! g.add_edge(a, b, ());
//! let m = GraphMetrics::of(&g);
//! assert!(m.is_connected());
//! assert_eq!(m.diameter, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bridges;
pub mod components;
pub mod graph;
pub mod metrics;
pub mod netlist;
pub mod traversal;
pub mod union_find;

pub use bridges::bridges;
pub use components::{cyclomatic_number, is_forest, Components};
pub use graph::{EdgeIx, Graph, NodeIx};
pub use metrics::{degree_histogram, GraphMetrics};
pub use netlist::Netlist;
pub use traversal::{bfs_distances, bfs_order, dfs_order, shortest_path};
pub use union_find::UnionFind;

#[cfg(test)]
mod proptests;
