//! The IR-projected netlist must match the seed (string-scan) netlist
//! construction exactly — same node order, same edge order, same labels —
//! on every registry benchmark. This pins the `Netlist::new`
//! projection to the behaviour the rest of the workspace was tuned against
//! (identical ordering is stronger than graph isomorphism, and it is what
//! keeps downstream placement/routing byte-deterministic).

use parchmint::{CompiledDevice, ComponentId, ConnectionId, Device, LayerType};
use parchmint_graph::{Graph, Netlist, NodeIx};
use std::collections::HashMap;

/// The pre-IR netlist construction, kept verbatim as the reference.
fn seed_build(
    device: &Device,
    mut include_layer: impl FnMut(&str) -> bool,
    include_valves: bool,
) -> Graph<ComponentId, ConnectionId> {
    let mut graph = Graph::with_capacity(device.components.len(), device.connections.len());
    let mut index: HashMap<ComponentId, NodeIx> = HashMap::new();
    for component in &device.components {
        let ix = graph.add_node(component.id.clone());
        index.insert(component.id.clone(), ix);
    }
    for connection in &device.connections {
        if !include_layer(connection.layer.as_str()) {
            continue;
        }
        let Some(&source) = index.get(&connection.source.component) else {
            continue;
        };
        for sink in &connection.sinks {
            let Some(&dst) = index.get(&sink.component) else {
                continue;
            };
            graph.add_edge(source, dst, connection.id.clone());
        }
    }
    if include_valves {
        for valve in &device.valves {
            let (Some(&valve_node), Some(controlled)) = (
                index.get(&valve.component),
                device.connection(valve.controls.as_str()),
            ) else {
                continue;
            };
            if let Some(&anchor) = index.get(&controlled.source.component) {
                graph.add_edge(valve_node, anchor, valve.controls.clone());
            }
        }
    }
    graph
}

fn assert_identical(
    got: &Graph<ComponentId, ConnectionId>,
    want: &Graph<ComponentId, ConnectionId>,
) {
    assert_eq!(got.node_count(), want.node_count());
    assert_eq!(got.edge_count(), want.edge_count());
    for (g, w) in got.node_indices().zip(want.node_indices()) {
        assert_eq!(got.node(g), want.node(w));
    }
    for (g, w) in got.edge_indices().zip(want.edge_indices()) {
        assert_eq!(got.edge(g), want.edge(w), "edge label mismatch at {g}");
        assert_eq!(
            got.edge_endpoints(g),
            want.edge_endpoints(w),
            "edge endpoint mismatch at {g}"
        );
    }
}

#[test]
fn ir_projection_matches_seed_on_all_benchmarks() {
    for benchmark in parchmint_suite::suite() {
        let device = benchmark.device();
        let compiled = CompiledDevice::from_ref(&device);

        let full = Netlist::new(&compiled);
        assert_identical(full.graph(), &seed_build(&device, |_| true, true));

        for layer_type in [LayerType::Flow, LayerType::Control] {
            let matching: Vec<&str> = device
                .layers
                .iter()
                .filter(|l| l.layer_type == layer_type)
                .map(|l| l.id.as_str())
                .collect();
            let restricted = Netlist::new_layer(&compiled, layer_type);
            assert_identical(
                restricted.graph(),
                &seed_build(&device, |layer| matching.contains(&layer), false),
            );
        }
    }
}
