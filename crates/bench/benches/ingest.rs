//! FPVA-scale ingest: streaming fast path vs the `Value` reference
//! path, plus parallel batch throughput.
//!
//! The committed `BENCH_ingest.json` (regenerated with
//! `parchmint bench-ingest`) tracks the same quantities over the whole
//! FPVA ladder; this criterion harness is the interactive view on the
//! small and medium rungs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parchmint::Device;
use std::hint::black_box;

fn print_ladder() {
    println!("\n=== FPVA ingest ladder ===");
    println!(
        "{:<10} {:>10} {:>8} {:>12}",
        "tier", "components", "valves", "json_bytes"
    );
    for benchmark in parchmint_suite::fpva_suite() {
        if benchmark.name() == "fpva_100k" {
            continue; // too large for an interactive print loop
        }
        let device = benchmark.device();
        let json = device.to_json().unwrap();
        println!(
            "{:<10} {:>10} {:>8} {:>12}",
            benchmark.name(),
            device.components.len(),
            device.valves.len(),
            json.len()
        );
        assert_eq!(
            Device::from_json_fast(&json).unwrap(),
            Device::from_json(&json).unwrap(),
            "{} must ingest identically on both paths",
            benchmark.name()
        );
    }
    println!();
}

fn bench_ingest(c: &mut Criterion) {
    print_ladder();

    let mut group = c.benchmark_group("ingest_parse");
    for tier in ["fpva_1k", "fpva_4k"] {
        let device = parchmint_suite::by_name(tier).unwrap().device();
        let json = device.to_json().unwrap();
        group.throughput(Throughput::Bytes(json.len() as u64));
        group.bench_with_input(BenchmarkId::new("value", tier), &json, |b, j| {
            b.iter(|| Device::from_json(black_box(j)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("fast", tier), &json, |b, j| {
            b.iter(|| Device::from_json_fast(black_box(j)).unwrap())
        });
    }
    group.finish();

    // Parallel batch: eight copies of the 1k tier across the core pool.
    let json = parchmint_suite::by_name("fpva_1k")
        .unwrap()
        .device()
        .to_json()
        .unwrap();
    let documents = vec![json; 8];
    let config = parchmint_harness::BatchIngestConfig::new();
    c.bench_function("ingest_batch_8x_fpva_1k", |b| {
        b.iter(|| {
            let outcomes = parchmint_harness::ingest_batch(black_box(&documents), &config);
            assert!(outcomes.iter().all(|o| o.compiled.is_ok()));
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ingest
}
criterion_main!(benches);
