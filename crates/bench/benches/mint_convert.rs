//! E5 — design exchange through the MINT netlist language.
//!
//! Prints exchange-fidelity results for the whole suite (topology must be
//! preserved in both directions), then benchmarks each stage of the
//! exchange pipeline: export, print, parse, rebuild.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parchmint_mint::{device_to_mint, mint_to_device, parse, print};
use std::hint::black_box;

fn print_fidelity() {
    println!("\n=== E5: MINT design-exchange fidelity ===");
    println!(
        "{:<30} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "mint_bytes", "statements", "topology", "valves"
    );
    for benchmark in parchmint_suite::suite() {
        let device = benchmark.device();
        let file = device_to_mint(&device);
        let text = print(&file);
        let rebuilt = mint_to_device(&parse(&text).unwrap()).unwrap();
        let topology_ok = rebuilt.components.len() == device.components.len()
            && rebuilt.connections.len() == device.connections.len()
            && device.connections.iter().all(|original| {
                rebuilt
                    .connection(original.id.as_str())
                    .is_some_and(|c| c.source == original.source && c.sinks == original.sinks)
            });
        let valves_ok = rebuilt.valves == device.valves;
        println!(
            "{:<30} {:>10} {:>10} {:>10} {:>10}",
            benchmark.name(),
            text.len(),
            file.statement_count(),
            topology_ok,
            valves_ok
        );
        assert!(
            topology_ok && valves_ok,
            "{} exchange broken",
            benchmark.name()
        );
    }
    println!();
}

fn bench_mint(c: &mut Criterion) {
    print_fidelity();

    let mut group = c.benchmark_group("E5_exchange");
    for k in [1, 3, 5] {
        let device = parchmint_suite::planar_synthetic(k);
        let n = device.components.len();
        let file = device_to_mint(&device);
        let text = print(&file);

        group.bench_with_input(BenchmarkId::new("export", n), &device, |b, d| {
            b.iter(|| device_to_mint(black_box(d)))
        });
        group.bench_with_input(BenchmarkId::new("print", n), &file, |b, f| {
            b.iter(|| print(black_box(f)))
        });
        group.bench_with_input(BenchmarkId::new("parse", n), &text, |b, t| {
            b.iter(|| parse(black_box(t)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rebuild", n), &file, |b, f| {
            b.iter(|| mint_to_device(black_box(f)).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_mint
}
criterion_main!(benches);
