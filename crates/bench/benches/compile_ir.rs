//! E9 — device-compilation overhead.
//!
//! Benchmarks `CompiledDevice::compile` across the synthetic scale ladder
//! and on the largest assay benchmark, answering the question the IR design
//! hinges on: is the one-time cost of interning ids and pre-resolving
//! endpoints negligible next to the stages that consume the view?
//!
//! The companion numbers land in the suite harness: `parchmint suite-run`
//! records per-benchmark compile wall time under the strippable
//! `timing.compile` key of its JSON report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parchmint::CompiledDevice;
use std::hint::black_box;

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_compile_device");
    for k in [1, 3, 5, 7] {
        let device = parchmint_suite::planar_synthetic(k);
        group.bench_with_input(
            BenchmarkId::from_parameter(device.components.len()),
            &device,
            |b, d| b.iter(|| CompiledDevice::from_ref(black_box(d))),
        );
    }
    let chip = parchmint_suite::by_name("chromatin_immunoprecipitation")
        .unwrap()
        .device();
    group.bench_with_input(BenchmarkId::new("assay", "chip"), &chip, |b, d| {
        b.iter(|| CompiledDevice::from_ref(black_box(d)))
    });

    // Owned compilation, the variant the harness uses once per benchmark
    // per sweep. The device clone is part of the measured loop; compare
    // against `serde_roundtrip`'s clone numbers to subtract it out.
    let template = parchmint_suite::planar_synthetic(4);
    group.bench_function("owned_compile", |b| {
        b.iter(|| CompiledDevice::compile(black_box(template.clone())))
    });
    group.finish();

    // Amortization check: one compiled lookup stream vs the linear-scan
    // equivalent on the raw device, over every component id.
    let device = parchmint_suite::planar_synthetic(4);
    let compiled = CompiledDevice::from_ref(&device);
    let ids: Vec<String> = device.components.iter().map(|c| c.id.to_string()).collect();
    let mut lookups = c.benchmark_group("E9_lookup");
    lookups.bench_function("compiled_index", |b| {
        b.iter(|| {
            ids.iter()
                .filter(|id| compiled.comp_ix(black_box(id)).is_some())
                .count()
        })
    });
    lookups.bench_function("device_scan", |b| {
        b.iter(|| {
            ids.iter()
                .filter(|id| device.component(black_box(id)).is_some())
                .count()
        })
    });
    lookups.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_compile
}
criterion_main!(benches);
