//! E6 — interchange conformance checking.
//!
//! Prints a defect-detection matrix: each class of seeded defect must be
//! caught by the matching rule over every (applicable) benchmark. Then
//! benchmarks validation throughput across the scale ladder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parchmint::{Device, Target};
use parchmint_verify::{validate, Rule};
use std::hint::black_box;

/// A seeded defect: mutates a device, returns the rule that must fire
/// (`None` when the mutation is inapplicable to this device).
type Defect = (&'static str, fn(&mut Device) -> Option<Rule>);

const DEFECTS: &[Defect] = &[
    ("dangling_sink", |device| {
        device.connections.first_mut().map(|connection| {
            connection.sinks.push(Target::new("ghost_component", "p"));
            Rule::RefUnknownId
        })
    }),
    ("duplicate_component", |device| {
        device.components.first().cloned().map(|dup| {
            device.components.push(dup);
            Rule::RefDuplicateId
        })
    }),
    ("sinkless_connection", |device| {
        device.connections.first_mut().map(|connection| {
            connection.sinks.clear();
            Rule::StrEmptyConnection
        })
    }),
    ("version_downgrade", |device| {
        if device.valves.is_empty() {
            None
        } else {
            device.version = parchmint::Version::V1_0;
            Some(Rule::VerContentMismatch)
        }
    }),
    ("interior_port", |device| {
        device
            .components
            .iter_mut()
            .find(|component| !component.ports.is_empty())
            .map(|component| {
                let span = component.span;
                component.ports[0].x = span.x / 2;
                component.ports[0].y = span.y / 2;
                Rule::GeoPortOffBoundary
            })
    }),
];

fn print_detection_matrix() {
    println!("\n=== E6: seeded-defect detection ===");
    println!("{:<26} {:>10} {:>10}", "defect", "seeded", "caught");
    for (name, mutate) in DEFECTS {
        let mut seeded = 0;
        let mut caught = 0;
        for benchmark in parchmint_suite::suite() {
            let mut device = benchmark.device();
            let Some(expected) = mutate(&mut device) else {
                continue;
            };
            seeded += 1;
            let compiled = parchmint::CompiledDevice::from_ref(&device);
            if validate(&compiled).by_rule(expected).next().is_some() {
                caught += 1;
            }
        }
        println!("{name:<26} {seeded:>10} {caught:>10}");
        assert_eq!(seeded, caught, "defect `{name}` escaped detection");
    }
    println!();
}

fn bench_validate(c: &mut Criterion) {
    print_detection_matrix();

    let mut group = c.benchmark_group("E6_validate");
    for k in [1, 3, 5, 7] {
        let compiled = parchmint::CompiledDevice::compile(parchmint_suite::planar_synthetic(k));
        group.bench_with_input(
            BenchmarkId::from_parameter(compiled.device().components.len()),
            &compiled,
            |b, d| b.iter(|| validate(black_box(d))),
        );
    }
    let chip = parchmint::CompiledDevice::compile(
        parchmint_suite::by_name("chromatin_immunoprecipitation")
            .unwrap()
            .device(),
    );
    group.bench_with_input(BenchmarkId::new("assay", "chip"), &chip, |b, d| {
        b.iter(|| validate(black_box(d)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_validate
}
criterion_main!(benches);
