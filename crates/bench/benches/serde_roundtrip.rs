//! E2 — interchange-format fidelity and throughput.
//!
//! Prints per-benchmark serialized sizes and verifies losslessness over the
//! whole suite, then benchmarks serialize/parse throughput (bytes/s) across
//! the scale ladder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parchmint::Device;
use std::hint::black_box;

fn print_sizes() {
    println!("\n=== E2: serialized size and round-trip fidelity ===");
    println!(
        "{:<30} {:>10} {:>12} {:>10}",
        "benchmark", "json_bytes", "pretty_bytes", "lossless"
    );
    for benchmark in parchmint_suite::suite() {
        let device = benchmark.device();
        let compact = device.to_json().unwrap();
        let pretty = device.to_json_pretty().unwrap();
        let lossless = Device::from_json(&compact).unwrap() == device;
        println!(
            "{:<30} {:>10} {:>12} {:>10}",
            benchmark.name(),
            compact.len(),
            pretty.len(),
            lossless
        );
        assert!(lossless, "{} must round-trip", benchmark.name());
    }
    println!();
}

fn bench_serde(c: &mut Criterion) {
    print_sizes();

    let mut serialize = c.benchmark_group("E2_serialize");
    for k in [1, 3, 5, 7] {
        let device = parchmint_suite::planar_synthetic(k);
        let bytes = device.to_json().unwrap().len() as u64;
        serialize.throughput(Throughput::Bytes(bytes));
        serialize.bench_with_input(
            BenchmarkId::from_parameter(device.components.len()),
            &device,
            |b, d| b.iter(|| black_box(d).to_json().unwrap()),
        );
    }
    serialize.finish();

    let mut parse = c.benchmark_group("E2_parse");
    for k in [1, 3, 5, 7] {
        let device = parchmint_suite::planar_synthetic(k);
        let json = device.to_json().unwrap();
        parse.throughput(Throughput::Bytes(json.len() as u64));
        parse.bench_with_input(
            BenchmarkId::from_parameter(device.components.len()),
            &json,
            |b, j| b.iter(|| Device::from_json(black_box(j)).unwrap()),
        );
    }
    parse.finish();

    // Valve-heavy device exercises the valveMap split/merge path.
    let chip = parchmint_suite::by_name("chromatin_immunoprecipitation")
        .unwrap()
        .device();
    let json = chip.to_json().unwrap();
    c.bench_function("E2_parse_valve_heavy", |b| {
        b.iter(|| Device::from_json(black_box(&json)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_serde
}
criterion_main!(benches);
