//! E8 (extension) — hydraulic simulation.
//!
//! Prints the gradient-generator outlet profile (the functional
//! verification of that benchmark) and a per-benchmark flow summary, then
//! benchmarks network build + solve across the synthetic ladder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parchmint::{CompiledDevice, ComponentId};
use parchmint_sim::{concentrations, FlowNetwork, Fluid};
use std::hint::black_box;

fn print_gradient_profile() {
    println!("\n=== E8: gradient-generator functional verification ===");
    let device = parchmint_suite::by_name("molecular_gradient_generator")
        .unwrap()
        .device();
    let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
    let mut boundary: Vec<(ComponentId, f64)> =
        vec![("in_a".into(), 1000.0), ("in_b".into(), 1000.0)];
    for i in 0..7 {
        boundary.push((format!("out_{i}").into(), 0.0));
    }
    let flow = network.solve(&boundary).unwrap();
    let c = concentrations(&flow, &[("in_a".into(), 1.0), ("in_b".into(), 0.0)]).unwrap();
    println!(
        "{:<8} {:>12} {:>14}",
        "outlet", "flow_nl_s", "concentration"
    );
    let mut previous = f64::INFINITY;
    for i in 0..7 {
        let id = ComponentId::new(format!("out_{i}"));
        let conc = c[&id];
        println!(
            "out_{i:<4} {:>12.2} {:>14.3}",
            flow.net_inflow(&id) * 1e12,
            conc
        );
        assert!(conc <= previous + 1e-9, "gradient must be monotone");
        previous = conc;
    }
    println!();
}

fn ladder_boundary(device: &parchmint::Device) -> Vec<(ComponentId, f64)> {
    device
        .components_of(&parchmint::Entity::Port)
        .enumerate()
        .map(|(i, c)| (c.id.clone(), if i == 0 { 1000.0 } else { 0.0 }))
        .collect()
}

fn bench_simulate(c: &mut Criterion) {
    print_gradient_profile();

    let mut build = c.benchmark_group("E8_network_build");
    for k in [1, 3, 5] {
        let compiled = CompiledDevice::compile(parchmint_suite::planar_synthetic(k));
        build.bench_with_input(
            BenchmarkId::from_parameter(compiled.device().components.len()),
            &compiled,
            |b, d| b.iter(|| FlowNetwork::new(black_box(d), Fluid::WATER)),
        );
    }
    build.finish();

    let mut solve = c.benchmark_group("E8_pressure_solve");
    for k in [1, 3, 5] {
        let device = parchmint_suite::planar_synthetic(k);
        let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
        let boundary = ladder_boundary(&device);
        solve.bench_with_input(
            BenchmarkId::from_parameter(device.components.len()),
            &(network, boundary),
            |b, (network, boundary)| b.iter(|| network.solve(black_box(boundary)).unwrap()),
        );
    }
    solve.finish();

    // Concentration transport on the gradient generator.
    let device = parchmint_suite::by_name("molecular_gradient_generator")
        .unwrap()
        .device();
    let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
    let mut boundary: Vec<(ComponentId, f64)> =
        vec![("in_a".into(), 1000.0), ("in_b".into(), 1000.0)];
    for i in 0..7 {
        boundary.push((format!("out_{i}").into(), 0.0));
    }
    let flow = network.solve(&boundary).unwrap();
    c.bench_function("E8_concentration_transport", |b| {
        b.iter(|| {
            concentrations(
                black_box(&flow),
                &[("in_a".into(), 1.0), ("in_b".into(), 0.0)],
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulate
}
criterion_main!(benches);
