//! E3 — device-layout figure generation.
//!
//! Prints per-benchmark SVG sizes for both schematic (unplaced) and
//! physical (placed-and-routed) renderings, then benchmarks render time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parchmint_pnr::{place_and_route, PlacerChoice, RouterChoice};
use std::hint::black_box;

fn print_figure_index() {
    println!("\n=== E3: device-layout figures (SVG) ===");
    println!(
        "{:<30} {:>14} {:>14}",
        "benchmark", "schematic_b", "physical_b"
    );
    for name in [
        "logic_gate_or",
        "rotary_pump_mixer",
        "aquaflex_3b",
        "planar_synthetic_2",
    ] {
        let device = parchmint_suite::by_name(name).unwrap().device();
        let schematic = parchmint_render::render_svg_default(&device);

        let mut routed = device.clone();
        place_and_route(&mut routed, PlacerChoice::Greedy, RouterChoice::AStar);
        let physical = parchmint_render::render_svg_default(&routed);

        assert!(schematic.starts_with("<svg"));
        assert!(
            physical.contains("<polyline"),
            "{name}: no routed channels drawn"
        );
        println!(
            "{:<30} {:>14} {:>14}",
            name,
            schematic.len(),
            physical.len()
        );
    }
    println!();
}

fn bench_render(c: &mut Criterion) {
    print_figure_index();

    let mut group = c.benchmark_group("E3_render");
    for k in [1, 3, 5] {
        let device = parchmint_suite::planar_synthetic(k);
        group.bench_with_input(
            BenchmarkId::new("schematic", device.components.len()),
            &device,
            |b, d| b.iter(|| parchmint_render::render_svg_default(black_box(d))),
        );
    }
    let mut routed = parchmint_suite::planar_synthetic(2);
    place_and_route(&mut routed, PlacerChoice::Greedy, RouterChoice::AStar);
    group.bench_with_input(
        BenchmarkId::new("physical", routed.components.len()),
        &routed,
        |b, d| b.iter(|| parchmint_render::render_svg_default(black_box(d))),
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_render
}
criterion_main!(benches);
