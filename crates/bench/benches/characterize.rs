//! E1 — suite characterization (the paper's Table 1 analogue).
//!
//! Prints the full characterization table, then benchmarks how fast a
//! device can be characterized (statistics + graph metrics) across the
//! synthetic scale ladder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn print_table() {
    println!("\n=== E1: suite characteristics ===");
    let table = parchmint_stats::characterize_suite();
    println!("{}", table.render_text());
    println!("=== E1 companion: entity-class totals ===");
    for (class, count) in table.class_totals() {
        println!("{:<14} {count}", class.name());
    }
    println!();
}

fn bench_characterize(c: &mut Criterion) {
    print_table();

    let mut group = c.benchmark_group("E1_characterize");
    for benchmark in ["rotary_pump_mixer", "chromatin_immunoprecipitation"] {
        let compiled = parchmint::CompiledDevice::compile(
            parchmint_suite::by_name(benchmark).unwrap().device(),
        );
        group.bench_with_input(BenchmarkId::new("assay", benchmark), &compiled, |b, d| {
            b.iter(|| parchmint_stats::DeviceStats::of(black_box(d)))
        });
    }
    for k in [1, 3, 5, 7] {
        let compiled = parchmint::CompiledDevice::compile(parchmint_suite::planar_synthetic(k));
        let components = compiled.device().components.len();
        group.bench_with_input(
            BenchmarkId::new("synthetic", components),
            &compiled,
            |b, d| b.iter(|| parchmint_stats::DeviceStats::of(black_box(d))),
        );
    }
    group.finish();

    let mut graph_group = c.benchmark_group("E1_graph_metrics");
    for k in [3, 5, 7] {
        let device = parchmint_suite::planar_synthetic(k);
        let netlist = parchmint_graph::Netlist::new(&parchmint::CompiledDevice::from_ref(&device));
        graph_group.bench_with_input(
            BenchmarkId::from_parameter(device.components.len()),
            &netlist,
            |b, n| b.iter(|| parchmint_graph::GraphMetrics::of(black_box(n.graph()))),
        );
    }
    graph_group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_characterize
}
criterion_main!(benches);
