//! E7 (extension) — ablations of the P&R design choices DESIGN.md calls
//! out: annealing effort, the A* bend penalty, and rip-up-and-reroute.
//!
//! Prints one table per ablation, then benchmarks the annealing-effort
//! sweep so the quality/runtime trade-off is measured, not asserted.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parchmint::CompiledDevice;
use parchmint_pnr::place::annealing::{AnnealingConfig, AnnealingPlacer};
use parchmint_pnr::place::cost::hpwl;
use parchmint_pnr::place::greedy::GreedyPlacer;
use parchmint_pnr::route::grid::{AStarRouter, GridRouterConfig};
use parchmint_pnr::{Placer, Router};
use std::hint::black_box;

fn annealing_effort_table() {
    println!("\n=== E7a: annealing effort ablation (planar_synthetic_4) ===");
    println!("{:<10} {:>12}", "sweeps", "hpwl_um");
    let compiled = CompiledDevice::compile(parchmint_suite::planar_synthetic(4));
    let greedy = GreedyPlacer::new().place(&compiled);
    println!("{:<10} {:>12}", "greedy", hpwl(&compiled, &greedy));
    for sweeps in [10, 40, 120, 360] {
        let placer = AnnealingPlacer::with_config(AnnealingConfig {
            sweeps,
            ..AnnealingConfig::default()
        });
        let placement = placer.place(&compiled);
        println!("{:<10} {:>12}", sweeps, hpwl(&compiled, &placement));
    }
}

fn bend_penalty_table() {
    println!("\n=== E7b: A* bend-penalty ablation (planar_synthetic_3, greedy placement) ===");
    println!(
        "{:<14} {:>10} {:>12} {:>8}",
        "bend_penalty", "routed", "wire_um", "bends"
    );
    let mut device = parchmint_suite::planar_synthetic(3);
    GreedyPlacer::new()
        .place(&CompiledDevice::from_ref(&device))
        .apply_to(&mut device);
    let placed = CompiledDevice::compile(device);
    for penalty in [0, 10, 30, 100] {
        let router = AStarRouter::with_config(GridRouterConfig {
            bend_penalty: penalty,
            ..GridRouterConfig::default()
        });
        let result = router.route(&placed);
        println!(
            "{:<14} {:>9.1}% {:>12} {:>8}",
            penalty,
            result.completion() * 100.0,
            result.wirelength(),
            result.bends()
        );
    }
}

fn ripup_table() {
    println!("\n=== E7c: rip-up-and-reroute ablation ===");
    println!(
        "{:<30} {:>10} {:>12}",
        "benchmark", "attempts", "completion"
    );
    for name in ["logic_gate_or", "planar_synthetic_3", "planar_synthetic_4"] {
        for attempts in [0, 2] {
            let mut device = parchmint_suite::by_name(name).unwrap().device();
            GreedyPlacer::new()
                .place(&CompiledDevice::from_ref(&device))
                .apply_to(&mut device);
            let placed = CompiledDevice::compile(device);
            let router = AStarRouter::with_config(GridRouterConfig {
                reroute_attempts: attempts,
                ..GridRouterConfig::default()
            });
            let result = router.route(&placed);
            println!(
                "{:<30} {:>10} {:>11.1}%",
                name,
                attempts,
                result.completion() * 100.0
            );
        }
    }
    println!();
}

fn bench_ablation(c: &mut Criterion) {
    annealing_effort_table();
    bend_penalty_table();
    ripup_table();

    let compiled = CompiledDevice::compile(parchmint_suite::planar_synthetic(3));
    let mut group = c.benchmark_group("E7_annealing_effort");
    for sweeps in [10, 40, 120] {
        let placer = AnnealingPlacer::with_config(AnnealingConfig {
            sweeps,
            ..AnnealingConfig::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(sweeps), &compiled, |b, d| {
            b.iter(|| placer.place(black_box(d)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablation
}
criterion_main!(benches);
