//! E4 — algorithmic-quality analysis, the suite's motivating use case.
//!
//! Prints the full quality matrix (every benchmark × every placer × every
//! router: completion, HPWL, wirelength), then benchmarks placement and
//! routing runtimes on representative workloads.
//!
//! Expected shape (recorded in EXPERIMENTS.md): annealing beats greedy on
//! HPWL everywhere with a superlinear runtime cost; the A* maze router's
//! completion dominates the straight-line baseline, and the gap widens with
//! benchmark density.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parchmint_pnr::{place_and_route, PlacerChoice, PnrReport, RouterChoice};
use std::hint::black_box;

/// Benchmarks included in the printed quality matrix (a mix of assay and
/// synthetic rungs that run in seconds; the top rungs are runtime-bound).
const MATRIX: &[&str] = &[
    "logic_gate_or",
    "logic_gate_and",
    "rotary_pump_mixer",
    "aquaflex_3b",
    "general_purpose_mfd",
    "molecular_gradient_generator",
    "chromatin_immunoprecipitation",
    "planar_synthetic_1",
    "planar_synthetic_2",
    "planar_synthetic_3",
    "planar_synthetic_4",
    "planar_synthetic_5",
];

fn print_matrix() {
    println!("\n=== E4: placement & routing quality matrix ===");
    println!("{}", PnrReport::header());
    for name in MATRIX {
        for &placer in PlacerChoice::ALL {
            for &router in RouterChoice::ALL {
                let mut device = parchmint_suite::by_name(name).unwrap().device();
                let report = place_and_route(&mut device, placer, router);
                println!("{}", report.row());
            }
        }
    }
    println!();
}

fn bench_pnr(c: &mut Criterion) {
    print_matrix();

    use parchmint_pnr::place::{annealing::AnnealingPlacer, greedy::GreedyPlacer};
    use parchmint_pnr::route::{grid::AStarRouter, straight::StraightRouter};
    use parchmint_pnr::{Placer, Router};

    let mut placement = c.benchmark_group("E4_placement");
    for k in [2, 3, 4] {
        let compiled = parchmint::CompiledDevice::compile(parchmint_suite::planar_synthetic(k));
        let n = compiled.component_count();
        placement.bench_with_input(BenchmarkId::new("greedy", n), &compiled, |b, d| {
            b.iter(|| GreedyPlacer::new().place(black_box(d)))
        });
        placement.bench_with_input(BenchmarkId::new("annealing", n), &compiled, |b, d| {
            b.iter(|| AnnealingPlacer::new().place(black_box(d)))
        });
    }
    placement.finish();

    let mut routing = c.benchmark_group("E4_routing");
    for k in [2, 3] {
        let mut device = parchmint_suite::planar_synthetic(k);
        let placement = GreedyPlacer::new().place(&parchmint::CompiledDevice::from_ref(&device));
        placement.apply_to(&mut device);
        let n = device.connections.len();
        let placed = parchmint::CompiledDevice::compile(device);
        routing.bench_with_input(BenchmarkId::new("straight", n), &placed, |b, d| {
            b.iter(|| StraightRouter::new().route(black_box(d)))
        });
        routing.bench_with_input(BenchmarkId::new("astar", n), &placed, |b, d| {
            b.iter(|| AStarRouter::new().route(black_box(d)))
        });
    }
    routing.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pnr
}
criterion_main!(benches);
