//! bench host crate
