//! Shared measurement helpers for the criterion benches and the
//! `parchmint bench-ingest` subcommand.
//!
//! Everything that must agree between the interactive benches, the CLI,
//! and CI lives here: the `BENCH_ingest.json` schema tag, the per-tier
//! measurement routine over the FPVA ladder, and the process-level
//! throughput/RSS probes. The JSON the measurement emits has a
//! deterministic *shape* (fixed keys, fixed nesting — values obviously
//! vary run to run), and CI asserts that shape on every push.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use parchmint::{CompiledDevice, Device};
use serde_json::{Map, Value};
use std::time::{Duration, Instant};

/// Schema tag stamped on every `BENCH_ingest.json`.
pub const INGEST_SCHEMA: &str = "parchmint-bench-ingest/v1";

/// Peak resident set size of this process in bytes, read from
/// `/proc/self/status` (`VmHWM`, the high-water mark). `None` off Linux
/// or when the field is missing.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|line| line.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Devices per second over `wall` (0.0 when `wall` is zero).
pub fn devices_per_sec(devices: usize, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        devices as f64 / secs
    } else {
        0.0
    }
}

/// Megabytes (1e6 bytes) per second over `wall` (0.0 when `wall` is
/// zero).
pub fn mb_per_sec(bytes: usize, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        bytes as f64 / 1e6 / secs
    } else {
        0.0
    }
}

/// The best (minimum) wall time of `repeats` runs of `body` — the
/// standard estimator for a deterministic workload, insensitive to
/// scheduler noise in one direction. Returns the last run's value.
pub fn best_of<T>(repeats: usize, mut body: impl FnMut() -> T) -> (T, Duration) {
    let mut best: Option<Duration> = None;
    let mut last: Option<T> = None;
    for _ in 0..repeats.max(1) {
        let started = Instant::now();
        let value = body();
        let wall = started.elapsed();
        if best.map_or(true, |b| wall < b) {
            best = Some(wall);
        }
        last = Some(value);
    }
    (last.expect("at least one run"), best.expect("timed"))
}

fn rate_object(devices: usize, bytes: usize, wall: Duration) -> Map {
    let mut object = Map::new();
    object.insert("wall_ms".to_string(), Value::from(wall.as_secs_f64() * 1e3));
    object.insert(
        "devices_per_sec".to_string(),
        Value::from(devices_per_sec(devices, wall)),
    );
    object.insert(
        "mb_per_sec".to_string(),
        Value::from(mb_per_sec(bytes, wall)),
    );
    object
}

/// Measures one FPVA tier end to end and returns the tier's report
/// object (fixed keys; see [`INGEST_SCHEMA`]).
///
/// Phases: generate the device, serialize it, cross-check that the
/// `Value` reference path and the streaming fast path parse it to the
/// same device (untimed), time each path (`repeats` runs, best-of,
/// results dropped per run so neither path is measured while the
/// other's tree is held), compile the interned IR once, and fan
/// `parallel_documents` copies of the document across `threads` workers
/// through [`parchmint_harness::ingest_batch`] to measure saturated
/// parallel ingest.
pub fn measure_ingest_tier(
    name: &str,
    repeats: usize,
    threads: usize,
    parallel_documents: usize,
) -> Result<Value, String> {
    let benchmark =
        parchmint_suite::by_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;

    let generate_started = Instant::now();
    let device = benchmark.device();
    let generate_wall = generate_started.elapsed();
    let components = device.components.len();
    let valves = device.valves.len();

    let serialize_started = Instant::now();
    let json = device.to_json().map_err(|e| e.to_string())?;
    let serialize_wall = serialize_started.elapsed();
    let json_bytes = json.len();

    // Cross-check equivalence outside the timed region, and drop both
    // trees before timing starts: holding a 10k-component device alive
    // while measuring the other path skews the allocator against
    // whichever path runs second.
    {
        let value_device =
            Device::from_json(&json).expect("reference path parses its own serialization");
        let fast_device =
            Device::from_json_fast(&json).expect("fast path parses its own serialization");
        if fast_device != value_device {
            return Err(format!("fast/value path divergence on `{name}`"));
        }
    }

    let ((), value_wall) = best_of(repeats, || {
        drop(Device::from_json(&json).expect("reference path parses"));
    });
    let ((), fast_wall) = best_of(repeats, || {
        drop(Device::from_json_fast(&json).expect("fast path parses"));
    });

    let reparsed = Device::from_json_fast(&json).expect("fast path parses");
    let compile_started = Instant::now();
    let compiled = CompiledDevice::compile(reparsed);
    let compile_wall = compile_started.elapsed();
    drop(compiled);

    let documents = vec![json.clone(); parallel_documents.max(1)];
    let batch_config = parchmint_harness::BatchIngestConfig::new().threads(threads);
    let parallel_started = Instant::now();
    let outcomes = parchmint_harness::ingest_batch(&documents, &batch_config);
    let parallel_wall = parallel_started.elapsed();
    if let Some(failure) = outcomes.iter().find_map(|o| o.compiled.as_ref().err()) {
        return Err(format!("parallel ingest failed on `{name}`: {failure}"));
    }

    let mut phases = Map::new();
    phases.insert(
        "generate_ms".to_string(),
        Value::from(generate_wall.as_secs_f64() * 1e3),
    );
    phases.insert(
        "serialize_ms".to_string(),
        Value::from(serialize_wall.as_secs_f64() * 1e3),
    );
    phases.insert(
        "compile_ms".to_string(),
        Value::from(compile_wall.as_secs_f64() * 1e3),
    );

    let value_path = rate_object(1, json_bytes, value_wall);
    let mut fast_path = rate_object(1, json_bytes, fast_wall);
    fast_path.insert(
        "speedup_vs_value".to_string(),
        Value::from(value_wall.as_secs_f64() / fast_wall.as_secs_f64().max(1e-12)),
    );

    let mut parallel = Map::new();
    parallel.insert("threads".to_string(), Value::from(threads));
    parallel.insert("documents".to_string(), Value::from(documents.len()));
    parallel.insert(
        "wall_ms".to_string(),
        Value::from(parallel_wall.as_secs_f64() * 1e3),
    );
    parallel.insert(
        "devices_per_sec".to_string(),
        Value::from(devices_per_sec(documents.len(), parallel_wall)),
    );
    parallel.insert(
        "mb_per_sec".to_string(),
        Value::from(mb_per_sec(json_bytes * documents.len(), parallel_wall)),
    );

    let mut tier = Map::new();
    tier.insert("name".to_string(), Value::from(name));
    tier.insert("components".to_string(), Value::from(components));
    tier.insert("valves".to_string(), Value::from(valves));
    tier.insert("json_bytes".to_string(), Value::from(json_bytes));
    tier.insert("repeats".to_string(), Value::from(repeats.max(1)));
    tier.insert("phases".to_string(), Value::Object(phases));
    tier.insert("value_path".to_string(), Value::Object(value_path));
    tier.insert("fast_path".to_string(), Value::Object(fast_path));
    tier.insert("parallel".to_string(), Value::Object(parallel));
    Ok(Value::Object(tier))
}

/// Assembles the full `BENCH_ingest.json` document from per-tier
/// reports.
pub fn ingest_report(tiers: Vec<Value>) -> Value {
    let mut object = Map::new();
    object.insert("schema".to_string(), Value::from(INGEST_SCHEMA));
    match peak_rss_bytes() {
        Some(bytes) => object.insert("peak_rss_bytes".to_string(), Value::from(bytes)),
        None => object.insert("peak_rss_bytes".to_string(), Value::Null),
    };
    object.insert("tiers".to_string(), Value::Array(tiers));
    Value::Object(object)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_probe_reads_a_plausible_peak() {
        // Linux CI and dev machines both have /proc; the probe must
        // return something in a sane range there.
        if std::path::Path::new("/proc/self/status").exists() {
            let rss = peak_rss_bytes().expect("VmHWM present");
            assert!(rss > 1 << 20, "peak RSS under 1 MiB is implausible: {rss}");
        }
    }

    #[test]
    fn throughput_helpers_are_consistent() {
        let wall = Duration::from_millis(500);
        assert_eq!(devices_per_sec(10, wall), 20.0);
        assert_eq!(mb_per_sec(5_000_000, wall), 10.0);
        assert_eq!(devices_per_sec(10, Duration::ZERO), 0.0);
        let (value, _best) = best_of(3, || 7);
        assert_eq!(value, 7);
    }

    #[test]
    fn tier_report_has_the_pinned_shape() {
        let tier = measure_ingest_tier("fpva_1k", 1, 2, 2).expect("measure");
        for key in [
            "name",
            "components",
            "valves",
            "json_bytes",
            "repeats",
            "phases",
            "value_path",
            "fast_path",
            "parallel",
        ] {
            assert!(!tier[key].is_null(), "missing tier key `{key}`");
        }
        assert_eq!(tier["name"], Value::from("fpva_1k"));
        assert_eq!(tier["components"], Value::from(1047));
        assert!(tier["fast_path"]["speedup_vs_value"].as_f64().is_some());
        let report = ingest_report(vec![tier]);
        assert_eq!(report["schema"], Value::from(INGEST_SCHEMA));
        assert!(report["tiers"].as_array().is_some_and(|t| t.len() == 1));
    }
}
