//! The resistive-network pressure solver.
//!
//! Pressure-driven Stokes flow through a channel network is formally
//! identical to a resistor network: channels are resistors, junctions are
//! nodes, pressures are voltages, and volumetric flow is current. Fixing
//! pressures at the boundary ports and writing conservation of mass at
//! every internal node yields a linear system in the node pressures.

use crate::linear::{solve_with, DenseMatrix, SolveError, SolvePolicy};
use crate::resistance::{
    component_resistance, ChannelGeometry, Fluid, DEFAULT_CHANNEL_DEPTH, DEFAULT_CHANNEL_LENGTH,
    DEFAULT_CHANNEL_WIDTH,
};
use parchmint::{CompiledDevice, ComponentId, ConnIx, ConnectionId, LayerType};
use parchmint_control::ValveState;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Why a simulation could not run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A boundary condition names a component outside the flow network.
    UnknownNode(ComponentId),
    /// No boundary pressures were supplied.
    NoBoundary,
    /// The reduced system was singular (should not occur for connected
    /// networks with at least one boundary node).
    Singular,
    /// The system contained a NaN or infinity (malformed parameters or
    /// boundary conditions upstream).
    NonFinite,
    /// The installed execution budget tripped mid-solve.
    Interrupted(parchmint_resilience::StopReason),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownNode(id) => write!(f, "boundary names unknown flow node `{id}`"),
            SimError::NoBoundary => f.write_str("at least one boundary pressure is required"),
            SimError::Singular => f.write_str("singular hydraulic system"),
            SimError::NonFinite => f.write_str("non-finite value in hydraulic system"),
            SimError::Interrupted(reason) => write!(f, "solve interrupted: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<SimError> for parchmint_resilience::PipelineError {
    fn from(error: SimError) -> parchmint_resilience::PipelineError {
        use parchmint_resilience::PipelineError;
        match &error {
            SimError::UnknownNode(_) => PipelineError::fatal(error.to_string())
                .with_hint("boundary conditions must name components on a flow layer"),
            SimError::NoBoundary => PipelineError::fatal(error.to_string())
                .with_hint("drive at least one port with a pressure"),
            SimError::Singular => PipelineError::fatal(error.to_string())
                .with_hint("check for floating islands; the relaxed solve ladder also failed"),
            SimError::NonFinite => PipelineError::fatal(error.to_string())
                .with_hint("check connection params and boundary pressures for NaN/infinity"),
            SimError::Interrupted(reason) => {
                parchmint_resilience::Interrupted { reason: *reason }.into()
            }
        }
    }
}

#[derive(Debug, Clone)]
struct NetEdge {
    connection: ConnectionId,
    a: usize,
    b: usize,
    conductance: f64,
}

/// The hydraulic network extracted from a device's flow layers.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    nodes: Vec<ComponentId>,
    index: HashMap<ComponentId, usize>,
    edges: Vec<NetEdge>,
}

impl FlowNetwork {
    /// Builds the network from a compiled device's flow layers, all
    /// valves at rest.
    pub fn new(compiled: &CompiledDevice, fluid: Fluid) -> Self {
        Self::build(compiled, fluid, &BTreeMap::new())
    }

    /// Builds the network with explicit valve states: edges whose
    /// connection is pinched by a `Closed` valve are removed (infinite
    /// resistance). `Open` valves pass flow unchanged.
    ///
    /// Pairs naturally with
    /// [`plan_flow`](parchmint_control::plan_flow): simulate the plan's
    /// `valve_states` to confirm fluid actually moves only along the
    /// planned path.
    pub fn with_valve_states(
        compiled: &CompiledDevice,
        fluid: Fluid,
        states: &BTreeMap<ComponentId, ValveState>,
    ) -> Self {
        Self::build(compiled, fluid, states)
    }

    fn build(
        compiled: &CompiledDevice,
        fluid: Fluid,
        states: &BTreeMap<ComponentId, ValveState>,
    ) -> Self {
        // A connection is blocked when any valve pinching it must be (or
        // rests) closed under `states`.
        let is_blocked = |connection: ConnIx| -> bool {
            compiled.valves_controlling(connection).any(|valve| {
                match states.get(&valve.component) {
                    Some(ValveState::Closed) => true,
                    Some(ValveState::Open) => false,
                    None => valve.valve_type == parchmint::ValveType::NormallyClosed,
                }
            })
        };

        let mut nodes = Vec::new();
        let mut index: HashMap<ComponentId, usize> = HashMap::new();
        let mut intern = |id: &ComponentId, nodes: &mut Vec<ComponentId>| -> usize {
            if let Some(&i) = index.get(id) {
                return i;
            }
            let i = nodes.len();
            nodes.push(id.clone());
            index.insert(id.clone(), i);
            i
        };

        let mut edges = Vec::new();
        for conn in compiled.connections() {
            let on_flow_layer = compiled
                .connection_layer(conn)
                .is_some_and(|l| compiled.layer(l).layer_type == LayerType::Flow);
            if !on_flow_layer {
                continue;
            }
            let connection = compiled.connection(conn);
            let Some(source_ix) = compiled.source(conn).component else {
                continue;
            };
            let source = compiled.component(source_ix);
            // A pinched channel still has physical end nodes; only its
            // conductance vanishes.
            let blocked = is_blocked(conn);
            let channel_resistance = channel_resistance(compiled, conn, fluid);
            for sink_endpoint in compiled.sinks(conn) {
                let Some(sink_ix) = sink_endpoint.component else {
                    continue;
                };
                let sink = compiled.component(sink_ix);
                if blocked {
                    intern(&source.id, &mut nodes);
                    intern(&sink.id, &mut nodes);
                    continue;
                }
                // Series: half of each terminal's internal path + channel.
                let total = channel_resistance
                    + 0.5 * component_resistance(source, fluid)
                    + 0.5 * component_resistance(sink, fluid);
                let a = intern(&source.id, &mut nodes);
                let b = intern(&sink.id, &mut nodes);
                if a == b {
                    continue; // self-loop carries no net flow
                }
                edges.push(NetEdge {
                    connection: connection.id.clone(),
                    a,
                    b,
                    conductance: 1.0 / total,
                });
            }
        }
        FlowNetwork {
            nodes,
            index,
            edges,
        }
    }

    /// Number of hydraulic nodes (components touching a flow channel).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of conducting channel segments.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True when `component` participates in the flow network.
    pub fn contains(&self, component: &ComponentId) -> bool {
        self.index.contains_key(component)
    }

    /// Solves for node pressures given boundary pressures in pascals.
    ///
    /// Nodes not connected (through conducting edges) to any boundary node
    /// are left at 0 Pa with zero flow — they are hydraulically floating.
    pub fn solve(&self, boundary: &[(ComponentId, f64)]) -> Result<Solution, SimError> {
        self.solve_with_policy(boundary, &SolvePolicy::default())
    }

    /// Solves, then on a singular system walks the bounded relaxed-policy
    /// ladder ([`SolvePolicy::relaxed`] steps 1–3) instead of giving up.
    ///
    /// A recovery is never silent: the returned note describes the
    /// substitution so callers can report the outcome as degraded.
    pub fn solve_resilient(
        &self,
        boundary: &[(ComponentId, f64)],
    ) -> Result<(Solution, Option<String>), SimError> {
        match self.solve(boundary) {
            Ok(solution) => Ok((solution, None)),
            Err(SimError::Singular) => {
                for step in 1..=3u32 {
                    match self.solve_with_policy(boundary, &SolvePolicy::relaxed(step)) {
                        Ok(solution) => {
                            parchmint_obs::count("sim.solve.relaxed_recoveries", 1);
                            return Ok((
                                solution,
                                Some(format!(
                                    "singular system recovered by relaxed solve (step {step})"
                                )),
                            ));
                        }
                        Err(SimError::Singular) => continue,
                        Err(other) => return Err(other),
                    }
                }
                Err(SimError::Singular)
            }
            Err(other) => Err(other),
        }
    }

    /// Solves under an explicit linear-solve policy.
    pub fn solve_with_policy(
        &self,
        boundary: &[(ComponentId, f64)],
        policy: &SolvePolicy,
    ) -> Result<Solution, SimError> {
        let _span = parchmint_obs::Span::enter("sim.solve");
        parchmint_resilience::fault::inject("sim.solve");
        // Fault site `sim.boundary`: model malformed upstream parameters by
        // poisoning the pinned pressures; the solver must reject the
        // resulting non-finite system, never crash on it.
        let malformed = parchmint_resilience::fault::armed("sim.boundary")
            == Some(parchmint_resilience::FaultKind::MalformedParams);
        if boundary.is_empty() {
            return Err(SimError::NoBoundary);
        }
        let mut pinned: HashMap<usize, f64> = HashMap::new();
        for (id, pressure) in boundary {
            let &i = self
                .index
                .get(id)
                .ok_or_else(|| SimError::UnknownNode(id.clone()))?;
            pinned.insert(i, if malformed { f64::NAN } else { *pressure });
        }

        // Restrict to the region reachable from boundary nodes.
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = pinned.keys().copied().collect();
        for &s in &stack {
            reachable[s] = true;
        }
        let mut adjacency: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.nodes.len()];
        for (e, edge) in self.edges.iter().enumerate() {
            adjacency[edge.a].push((edge.b, e));
            adjacency[edge.b].push((edge.a, e));
        }
        while let Some(n) = stack.pop() {
            for &(m, _) in &adjacency[n] {
                if !reachable[m] {
                    reachable[m] = true;
                    stack.push(m);
                }
            }
        }

        // Unknowns: reachable, unpinned nodes.
        let unknowns: Vec<usize> = (0..self.nodes.len())
            .filter(|i| reachable[*i] && !pinned.contains_key(i))
            .collect();
        let unknown_index: HashMap<usize, usize> =
            unknowns.iter().enumerate().map(|(k, &i)| (i, k)).collect();

        let n = unknowns.len();
        if parchmint_obs::enabled() {
            parchmint_obs::count("sim.solve.nodes", self.nodes.len() as u64);
            parchmint_obs::count("sim.solve.edges", self.edges.len() as u64);
            parchmint_obs::count("sim.solve.unknowns", n as u64);
        }
        let mut a = DenseMatrix::zeros(n);
        let mut b = vec![0.0; n];
        for edge in &self.edges {
            if !reachable[edge.a] {
                continue;
            }
            let g = edge.conductance;
            for (this, other) in [(edge.a, edge.b), (edge.b, edge.a)] {
                let Some(&row) = unknown_index.get(&this) else {
                    continue;
                };
                a[(row, row)] += g;
                match unknown_index.get(&other) {
                    Some(&col) => a[(row, col)] -= g,
                    None => b[row] += g * pinned[&other],
                }
            }
        }
        // Fault site `sim.solve` (NaN): poison the assembled right-hand
        // side; the solver's up-front scan must turn this into a
        // structured `NonFinite` error.
        if parchmint_resilience::fault::armed("sim.solve")
            == Some(parchmint_resilience::FaultKind::Nan)
        {
            if let Some(first) = b.first_mut() {
                *first = f64::NAN;
            }
        }
        let x = solve_with(a, b, policy).map_err(|e| match e {
            SolveError::Singular => SimError::Singular,
            SolveError::NonFinite => SimError::NonFinite,
            SolveError::Interrupted(i) => SimError::Interrupted(i.reason),
        })?;

        let mut pressures = BTreeMap::new();
        for (i, id) in self.nodes.iter().enumerate() {
            let p = if let Some(&p) = pinned.get(&i) {
                p
            } else if let Some(&k) = unknown_index.get(&i) {
                x[k]
            } else {
                0.0 // floating region
            };
            pressures.insert(id.clone(), p);
        }

        let mut flows = Vec::with_capacity(self.edges.len());
        for edge in &self.edges {
            let (pa, pb) = (
                pressures[&self.nodes[edge.a]],
                pressures[&self.nodes[edge.b]],
            );
            let q = if reachable[edge.a] {
                edge.conductance * (pa - pb)
            } else {
                0.0
            };
            flows.push(EdgeFlow {
                connection: edge.connection.clone(),
                from: self.nodes[edge.a].clone(),
                to: self.nodes[edge.b].clone(),
                flow: q,
            });
        }

        // Trace-only solution quality check: the worst violation of mass
        // conservation across the solved (unknown) nodes.
        if parchmint_obs::enabled() {
            let mut net = vec![0.0; self.nodes.len()];
            for (edge, flow) in self.edges.iter().zip(&flows) {
                net[edge.a] += flow.flow;
                net[edge.b] -= flow.flow;
            }
            let residual = unknowns.iter().map(|&i| net[i].abs()).fold(0.0, f64::max);
            parchmint_obs::sample("sim.solve.residual", residual);
        }

        Ok(Solution { pressures, flows })
    }
}

/// Channel resistance of a connection: routed geometry when the device is
/// routed, declared/default geometry otherwise.
fn channel_resistance(compiled: &CompiledDevice, connection: ConnIx, fluid: Fluid) -> f64 {
    let width = compiled
        .connection(connection)
        .params
        .get_f64("width")
        .unwrap_or(DEFAULT_CHANNEL_WIDTH);
    if let Some(route) = compiled.route(connection) {
        ChannelGeometry::new(
            route.length() as f64,
            route.width as f64,
            route.depth as f64,
        )
        .resistance(fluid)
    } else {
        ChannelGeometry::new(DEFAULT_CHANNEL_LENGTH, width, DEFAULT_CHANNEL_DEPTH).resistance(fluid)
    }
}

/// Signed flow through one expanded channel segment.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeFlow {
    /// Owning connection.
    pub connection: ConnectionId,
    /// Declared source terminal component.
    pub from: ComponentId,
    /// Declared sink terminal component.
    pub to: ComponentId,
    /// Volumetric flow in m³/s, positive from `from` to `to`.
    pub flow: f64,
}

/// A solved pressure/flow field.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    pressures: BTreeMap<ComponentId, f64>,
    flows: Vec<EdgeFlow>,
}

impl Solution {
    /// Pressure at a node, in Pa.
    pub fn pressure(&self, component: &ComponentId) -> Option<f64> {
        self.pressures.get(component).copied()
    }

    /// All per-segment flows.
    pub fn flows(&self) -> &[EdgeFlow] {
        &self.flows
    }

    /// Total (signed source→sink) flow carried by a connection, m³/s.
    pub fn flow_through(&self, connection: &ConnectionId) -> f64 {
        self.flows
            .iter()
            .filter(|f| &f.connection == connection)
            .map(|f| f.flow)
            .sum()
    }

    /// Net volumetric flow *into* `component` from the network, m³/s.
    /// Positive for an outlet (fluid arriving), negative for an inlet.
    pub fn net_inflow(&self, component: &ComponentId) -> f64 {
        self.flows
            .iter()
            .map(|f| {
                if &f.to == component {
                    f.flow
                } else if &f.from == component {
                    -f.flow
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Largest violation of mass conservation across non-boundary nodes;
    /// should be at solver precision (≪ any physical flow).
    pub fn max_conservation_error(&self, boundary: &[ComponentId]) -> f64 {
        self.pressures
            .keys()
            .filter(|id| !boundary.contains(id))
            .map(|id| self.net_inflow(id).abs())
            .fold(0.0, f64::max)
    }
}

/// Shared fixtures for this crate's tests.
#[cfg(test)]
pub(crate) mod tests_support {
    use parchmint::geometry::Span;
    use parchmint::{Component, Connection, Device, Entity, Layer, LayerType, Port, Target};

    /// inlet → node → outlet, all defaults.
    pub(crate) fn straight_device() -> Device {
        Device::builder("straight")
            .layer(Layer::new("flow", "flow", LayerType::Flow))
            .component(
                Component::new("in", "in", Entity::Port, ["flow"], Span::square(200))
                    .with_port(Port::new("p", "flow", 200, 100)),
            )
            .component(
                Component::new("mid", "mid", Entity::Node, ["flow"], Span::square(60))
                    .with_port(Port::new("w", "flow", 0, 30))
                    .with_port(Port::new("e", "flow", 60, 30)),
            )
            .component(
                Component::new("out", "out", Entity::Port, ["flow"], Span::square(200))
                    .with_port(Port::new("p", "flow", 0, 100)),
            )
            .connection(Connection::new(
                "c1",
                "c1",
                "flow",
                Target::new("in", "p"),
                [Target::new("mid", "w")],
            ))
            .connection(Connection::new(
                "c2",
                "c2",
                "flow",
                Target::new("mid", "e"),
                [Target::new("out", "p")],
            ))
            .build()
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::straight_device;
    use super::*;
    use parchmint::geometry::Span;
    use parchmint::{Component, Connection, Device, Entity, Layer, Port, Target, ValveType};

    #[test]
    fn series_channel_carries_uniform_flow() {
        let device = straight_device();
        let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
        assert_eq!(network.node_count(), 3);
        assert_eq!(network.edge_count(), 2);
        let solution = network
            .solve(&[("in".into(), 1000.0), ("out".into(), 0.0)])
            .unwrap();
        let q1 = solution.flow_through(&"c1".into());
        let q2 = solution.flow_through(&"c2".into());
        assert!(q1 > 0.0, "flow runs downhill");
        assert!(
            (q1 - q2).abs() / q1 < 1e-9,
            "series flow equal: {q1} vs {q2}"
        );
        // Realistic magnitude: nL/s range for 1 kPa across two 2 mm channels.
        assert!(q1 > 1e-12 && q1 < 1e-8, "q = {q1:.3e}");
        // Midpoint pressure strictly between the rails.
        let p_mid = solution.pressure(&"mid".into()).unwrap();
        assert!(p_mid > 0.0 && p_mid < 1000.0);
        assert!(solution.max_conservation_error(&["in".into(), "out".into()]) < q1 * 1e-9);
    }

    #[test]
    fn reversed_pressure_reverses_flow() {
        let device = straight_device();
        let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
        let solution = network
            .solve(&[("in".into(), 0.0), ("out".into(), 500.0)])
            .unwrap();
        assert!(solution.flow_through(&"c1".into()) < 0.0);
    }

    #[test]
    fn parallel_branches_split_by_conductance() {
        // in → splits into two branches (one long, one short) → out.
        let device = Device::builder("par")
            .layer(Layer::new("flow", "flow", LayerType::Flow))
            .component(
                Component::new("in", "in", Entity::Port, ["flow"], Span::square(200))
                    .with_port(Port::new("p", "flow", 200, 100)),
            )
            .component(
                Component::new("out", "out", Entity::Port, ["flow"], Span::square(200))
                    .with_port(Port::new("p", "flow", 0, 100)),
            )
            .component(
                Component::new("short", "short", Entity::Node, ["flow"], Span::square(60))
                    .with_port(Port::new("w", "flow", 0, 30))
                    .with_port(Port::new("e", "flow", 60, 30)),
            )
            .component(
                // A serpentine mixer: far higher series resistance.
                Component::new(
                    "long",
                    "long",
                    Entity::Mixer,
                    ["flow"],
                    Span::new(2000, 1000),
                )
                .with_port(Port::new("in", "flow", 0, 500))
                .with_port(Port::new("out", "flow", 2000, 500)),
            )
            .connection(Connection::new(
                "a1",
                "a1",
                "flow",
                Target::new("in", "p"),
                [Target::new("short", "w")],
            ))
            .connection(Connection::new(
                "a2",
                "a2",
                "flow",
                Target::new("short", "e"),
                [Target::new("out", "p")],
            ))
            .connection(Connection::new(
                "b1",
                "b1",
                "flow",
                Target::new("in", "p"),
                [Target::new("long", "in")],
            ))
            .connection(Connection::new(
                "b2",
                "b2",
                "flow",
                Target::new("long", "out"),
                [Target::new("out", "p")],
            ))
            .build()
            .unwrap();
        let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
        let solution = network
            .solve(&[("in".into(), 1000.0), ("out".into(), 0.0)])
            .unwrap();
        let q_short = solution.flow_through(&"a1".into());
        let q_long = solution.flow_through(&"b1".into());
        assert!(
            q_short > 2.0 * q_long,
            "short branch dominates: {q_short:.2e} vs {q_long:.2e}"
        );
        // Inflow at the source equals total outflow at the sink.
        let src = solution.net_inflow(&"in".into());
        let dst = solution.net_inflow(&"out".into());
        assert!((src + dst).abs() < (q_short + q_long) * 1e-9);
    }

    #[test]
    fn closed_valve_blocks_flow() {
        let mut device = straight_device();
        device.components.push(Component::new(
            "v1",
            "v1",
            Entity::Valve,
            ["flow"],
            Span::square(300),
        ));
        device
            .valves
            .push(parchmint::Valve::new("v1", "c2", ValveType::NormallyOpen));

        // At rest (normally open): conducts.
        let open = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
        assert_eq!(open.edge_count(), 2);

        // Explicitly closed: c2's conductance disappears; the outlet node
        // remains but floats.
        let mut states = BTreeMap::new();
        states.insert(ComponentId::new("v1"), ValveState::Closed);
        let closed = FlowNetwork::with_valve_states(
            &CompiledDevice::from_ref(&device),
            Fluid::WATER,
            &states,
        );
        assert_eq!(closed.edge_count(), 1);
        let solution = closed
            .solve(&[("in".into(), 1000.0), ("out".into(), 0.0)])
            .unwrap();
        assert_eq!(
            solution.flow_through(&"c1".into()),
            0.0,
            "dead-ends carry no flow"
        );
    }

    #[test]
    fn normally_closed_valve_blocks_at_rest() {
        let mut device = straight_device();
        device.components.push(Component::new(
            "v1",
            "v1",
            Entity::Valve,
            ["flow"],
            Span::square(300),
        ));
        device
            .valves
            .push(parchmint::Valve::new("v1", "c2", ValveType::NormallyClosed));
        let rest = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
        assert_eq!(rest.edge_count(), 1);
        // Opened explicitly: conducts again.
        let mut states = BTreeMap::new();
        states.insert(ComponentId::new("v1"), ValveState::Open);
        let open = FlowNetwork::with_valve_states(
            &CompiledDevice::from_ref(&device),
            Fluid::WATER,
            &states,
        );
        assert_eq!(open.edge_count(), 2);
    }

    #[test]
    fn boundary_errors() {
        let device = straight_device();
        let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
        assert!(matches!(network.solve(&[]), Err(SimError::NoBoundary)));
        let err = network.solve(&[("ghost".into(), 1.0)]).unwrap_err();
        assert!(matches!(err, SimError::UnknownNode(_)));
        assert!(err.to_string().contains("ghost"));
        assert!(network.contains(&"mid".into()));
        assert!(!network.contains(&"ghost".into()));
    }

    #[test]
    fn floating_region_rests_at_zero() {
        // Two disconnected pairs; boundary only touches one.
        let device = Device::builder("two")
            .layer(Layer::new("flow", "flow", LayerType::Flow))
            .component(
                Component::new("a", "a", Entity::Port, ["flow"], Span::square(200))
                    .with_port(Port::new("p", "flow", 200, 100)),
            )
            .component(
                Component::new("b", "b", Entity::Port, ["flow"], Span::square(200))
                    .with_port(Port::new("p", "flow", 0, 100)),
            )
            .component(
                Component::new("c", "c", Entity::Port, ["flow"], Span::square(200))
                    .with_port(Port::new("p", "flow", 200, 100)),
            )
            .component(
                Component::new("d", "d", Entity::Port, ["flow"], Span::square(200))
                    .with_port(Port::new("p", "flow", 0, 100)),
            )
            .connection(Connection::new(
                "ab",
                "ab",
                "flow",
                Target::new("a", "p"),
                [Target::new("b", "p")],
            ))
            .connection(Connection::new(
                "cd",
                "cd",
                "flow",
                Target::new("c", "p"),
                [Target::new("d", "p")],
            ))
            .build()
            .unwrap();
        let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
        let solution = network
            .solve(&[("a".into(), 800.0), ("b".into(), 0.0)])
            .unwrap();
        assert!(solution.flow_through(&"ab".into()) > 0.0);
        assert_eq!(solution.flow_through(&"cd".into()), 0.0);
        assert_eq!(solution.pressure(&"c".into()), Some(0.0));
    }

    #[test]
    fn routed_geometry_changes_resistance() {
        use parchmint::geometry::Point;
        let mut device = straight_device();
        let base = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
        let q_base = base
            .solve(&[("in".into(), 1000.0), ("out".into(), 0.0)])
            .unwrap()
            .flow_through(&"c1".into());
        // Add an extremely long routed path for c1: flow must drop.
        device.features.push(
            parchmint::ConnectionFeature::new(
                "rf1",
                "c1",
                "flow",
                200,
                50,
                [Point::new(0, 0), Point::new(100_000, 0)],
            )
            .into(),
        );
        let routed = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
        let q_routed = routed
            .solve(&[("in".into(), 1000.0), ("out".into(), 0.0)])
            .unwrap()
            .flow_through(&"c1".into());
        assert!(q_routed < q_base / 2.0, "{q_routed:.2e} vs {q_base:.2e}");
    }
}
