//! Hydraulic resistance models.
//!
//! Pressure-driven laminar flow through a rectangular microchannel obeys
//! `Q = ΔP / R` with the standard shallow-channel approximation
//!
//! ```text
//! R = 12 µ L / (w h³ (1 − 0.63 h/w)),   h ≤ w
//! ```
//!
//! (µ: dynamic viscosity, L/w/h: channel length/width/depth). Components
//! contribute a series resistance for the internal path they impose,
//! estimated from their footprint and entity class.

use parchmint::{Component, Entity};

/// Fluid properties used by the solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fluid {
    /// Dynamic viscosity, in Pa·s.
    pub viscosity: f64,
}

impl Fluid {
    /// Water at room temperature (µ = 1.0 mPa·s).
    pub const WATER: Fluid = Fluid { viscosity: 1.0e-3 };
}

impl Default for Fluid {
    fn default() -> Self {
        Fluid::WATER
    }
}

/// Rectangular channel geometry, in micrometres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelGeometry {
    /// Flow-path length, µm.
    pub length_um: f64,
    /// Channel width, µm.
    pub width_um: f64,
    /// Channel depth, µm.
    pub depth_um: f64,
}

impl ChannelGeometry {
    /// Creates a geometry, clamping all extents to at least 1 µm.
    pub fn new(length_um: f64, width_um: f64, depth_um: f64) -> Self {
        ChannelGeometry {
            length_um: length_um.max(1.0),
            width_um: width_um.max(1.0),
            depth_um: depth_um.max(1.0),
        }
    }

    /// Hydraulic resistance in Pa·s/m³.
    pub fn resistance(&self, fluid: Fluid) -> f64 {
        const UM: f64 = 1e-6;
        let length = self.length_um * UM;
        // The approximation requires h ≤ w; the duct is symmetric in (w, h).
        let (w, h) = if self.width_um >= self.depth_um {
            (self.width_um * UM, self.depth_um * UM)
        } else {
            (self.depth_um * UM, self.width_um * UM)
        };
        let aspect_correction = 1.0 - 0.63 * h / w;
        12.0 * fluid.viscosity * length / (w * h.powi(3) * aspect_correction)
    }
}

/// Default channel width when a connection declares none, µm.
pub const DEFAULT_CHANNEL_WIDTH: f64 = 200.0;

/// Default channel depth, µm.
pub const DEFAULT_CHANNEL_DEPTH: f64 = 50.0;

/// Default channel length when the device carries no routed geometry, µm.
pub const DEFAULT_CHANNEL_LENGTH: f64 = 2000.0;

/// Estimated internal flow-path resistance of a component, in Pa·s/m³.
///
/// Serpentine mixers fold a long channel into their footprint (length ≈
/// `numBends × height`); chambers and traps are wide, low-resistance
/// cavities; junction nodes are negligible. These coefficients only need to
/// be *relatively* right: network analyses (split ratios, gradients) depend
/// on resistance ratios, not absolute values.
pub fn component_resistance(component: &Component, fluid: Fluid) -> f64 {
    let span_x = component.span.x as f64;
    let span_y = component.span.y as f64;
    let width = component
        .params
        .get_f64("channelWidth")
        .unwrap_or(DEFAULT_CHANNEL_WIDTH);
    let depth = DEFAULT_CHANNEL_DEPTH;

    let geometry = match &component.entity {
        Entity::Node | Entity::Via | Entity::Port => {
            // Negligible path; keep a tiny series term for conditioning.
            ChannelGeometry::new(span_x.max(60.0) / 2.0, width, depth)
        }
        Entity::Mixer | Entity::CurvedMixer | Entity::SquareMixer => {
            let bends = component.params.get_f64("numBends").unwrap_or(5.0).max(1.0);
            ChannelGeometry::new(bends * span_y + span_x, width, depth)
        }
        Entity::RotaryMixer => {
            let radius = component.params.get_f64("radius").unwrap_or(span_x / 2.0);
            ChannelGeometry::new(std::f64::consts::PI * radius, width, depth)
        }
        Entity::ReactionChamber | Entity::DiamondChamber | Entity::LongCellTrap => {
            // A wide cavity: treat the whole span as the duct cross-section.
            ChannelGeometry::new(span_x, span_y.max(width), depth)
        }
        Entity::CellTrap | Entity::Filter => {
            // Constricted paths: narrow effective width.
            ChannelGeometry::new(span_x, width / 2.0, depth)
        }
        Entity::Tree | Entity::YTree | Entity::Mux | Entity::GradientGenerator => {
            ChannelGeometry::new(span_x, width, depth)
        }
        _ => ChannelGeometry::new((span_x + span_y) / 2.0, width, depth),
    };
    geometry.resistance(fluid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parchmint::geometry::Span;
    use parchmint::Params;

    #[test]
    fn resistance_scales_linearly_with_length() {
        let short = ChannelGeometry::new(1000.0, 200.0, 50.0).resistance(Fluid::WATER);
        let long = ChannelGeometry::new(2000.0, 200.0, 50.0).resistance(Fluid::WATER);
        assert!((long / short - 2.0).abs() < 1e-12);
    }

    #[test]
    fn resistance_is_cubic_in_depth() {
        let shallow = ChannelGeometry::new(1000.0, 400.0, 25.0).resistance(Fluid::WATER);
        let deep = ChannelGeometry::new(1000.0, 400.0, 50.0).resistance(Fluid::WATER);
        // Depth doubles: h³ term gives ~8×, aspect correction nudges it.
        let ratio = shallow / deep;
        assert!(ratio > 6.0 && ratio < 9.0, "ratio {ratio}");
    }

    #[test]
    fn symmetric_in_width_and_depth() {
        let a = ChannelGeometry::new(1000.0, 400.0, 50.0).resistance(Fluid::WATER);
        let b = ChannelGeometry::new(1000.0, 50.0, 400.0).resistance(Fluid::WATER);
        assert!((a - b).abs() / a < 1e-12);
    }

    #[test]
    fn realistic_magnitude() {
        // A 1 mm × 200 µm × 50 µm water channel is ~5.7e11 Pa·s/m³;
        // 1 kPa then drives ~1.8 µL/s. Sanity band, not an exact value.
        let r = ChannelGeometry::new(1000.0, 200.0, 50.0).resistance(Fluid::WATER);
        assert!(r > 1e11 && r < 1e13, "R = {r:.3e}");
        let q = 1000.0 / r; // m³/s at 1 kPa
        assert!(q > 1e-10 && q < 1e-8, "Q = {q:.3e}");
    }

    #[test]
    fn extents_are_clamped() {
        let g = ChannelGeometry::new(-5.0, 0.0, 0.0);
        assert_eq!(g.length_um, 1.0);
        assert!(g.resistance(Fluid::WATER).is_finite());
    }

    #[test]
    fn mixer_resistance_grows_with_bends() {
        let few = parchmint::Component::new("m", "m", Entity::Mixer, ["f"], Span::new(1400, 1000))
            .with_params(Params::new().with("numBends", 2));
        let many = parchmint::Component::new("m", "m", Entity::Mixer, ["f"], Span::new(1400, 1000))
            .with_params(Params::new().with("numBends", 12));
        assert!(
            component_resistance(&many, Fluid::WATER)
                > 3.0 * component_resistance(&few, Fluid::WATER)
        );
    }

    #[test]
    fn chambers_are_low_resistance() {
        let chamber = parchmint::Component::new(
            "c",
            "c",
            Entity::ReactionChamber,
            ["f"],
            Span::new(1400, 800),
        );
        let mixer = parchmint::Component::new("m", "m", Entity::Mixer, ["f"], Span::new(1400, 800))
            .with_params(Params::new().with("numBends", 6));
        assert!(
            component_resistance(&chamber, Fluid::WATER)
                < component_resistance(&mixer, Fluid::WATER) / 10.0
        );
    }

    #[test]
    fn nodes_are_negligible() {
        let node = parchmint::Component::new("n", "n", Entity::Node, ["f"], Span::square(60));
        let mixer = parchmint::Component::new("m", "m", Entity::Mixer, ["f"], Span::new(1400, 800));
        assert!(
            component_resistance(&node, Fluid::WATER)
                < component_resistance(&mixer, Fluid::WATER) / 50.0
        );
    }
}
