//! Property-based tests on the hydraulic solver: physical invariants must
//! hold for arbitrary synthetic networks and boundary conditions.

use crate::network::FlowNetwork;
use crate::resistance::Fluid;
use crate::transport::concentrations;
use parchmint::{CompiledDevice, ComponentId};
use parchmint_suite::{synthetic, SyntheticConfig};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = SyntheticConfig> {
    (2usize..6, 2usize..6, 0.0f64..1.0, 2usize..6, any::<u64>()).prop_map(
        |(w, h, extra, io, seed)| SyntheticConfig {
            grid_width: w,
            grid_height: h,
            extra_edge_probability: extra,
            io_ports: io,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mass_is_conserved(config in config_strategy(), drive in 100.0f64..10_000.0) {
        let device = synthetic::generate("prop", &config);
        let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
        let ports: Vec<ComponentId> = device
            .components_of(&parchmint::Entity::Port)
            .map(|c| c.id.clone())
            .collect();
        prop_assume!(ports.len() >= 2);
        let boundary: Vec<(ComponentId, f64)> = ports
            .iter()
            .enumerate()
            .map(|(i, id)| (id.clone(), if i == 0 { drive } else { 0.0 }))
            .collect();
        let solution = network.solve(&boundary).unwrap();
        let driven = solution.net_inflow(&ports[0]).abs();
        prop_assert!(driven > 0.0);
        prop_assert!(solution.max_conservation_error(&ports) < driven.max(1e-18) * 1e-6);
        // Boundary flows must sum to ~zero (everything in comes out).
        let net: f64 = ports.iter().map(|p| solution.net_inflow(p)).sum();
        prop_assert!(net.abs() < driven * 1e-6);
    }

    #[test]
    fn pressures_obey_the_maximum_principle(config in config_strategy()) {
        // Interior pressures lie within the range of boundary pressures.
        let device = synthetic::generate("prop", &config);
        let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
        let ports: Vec<ComponentId> = device
            .components_of(&parchmint::Entity::Port)
            .map(|c| c.id.clone())
            .collect();
        prop_assume!(ports.len() >= 2);
        let boundary: Vec<(ComponentId, f64)> = ports
            .iter()
            .enumerate()
            .map(|(i, id)| (id.clone(), 250.0 * i as f64))
            .collect();
        let (lo, hi) = (0.0, 250.0 * (ports.len() - 1) as f64);
        let solution = network.solve(&boundary).unwrap();
        for component in &device.components {
            if let Some(p) = solution.pressure(&component.id) {
                prop_assert!(
                    p >= lo - 1e-9 && p <= hi + 1e-9,
                    "pressure {p} outside [{lo}, {hi}] at {}", component.id
                );
            }
        }
    }

    #[test]
    fn concentrations_stay_in_the_inlet_hull(config in config_strategy()) {
        let device = synthetic::generate("prop", &config);
        let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
        let ports: Vec<ComponentId> = device
            .components_of(&parchmint::Entity::Port)
            .map(|c| c.id.clone())
            .collect();
        prop_assume!(ports.len() >= 2);
        let boundary: Vec<(ComponentId, f64)> = ports
            .iter()
            .enumerate()
            .map(|(i, id)| (id.clone(), if i == 0 { 1000.0 } else { 0.0 }))
            .collect();
        let solution = network.solve(&boundary).unwrap();
        let c = concentrations(&solution, &[(ports[0].clone(), 1.0)]).unwrap();
        for (id, value) in &c {
            prop_assert!(
                (-1e-9..=1.0 + 1e-9).contains(value),
                "concentration {value} at {id} escapes [0, 1]"
            );
        }
    }

    #[test]
    fn flow_scales_linearly_with_pressure(config in config_strategy()) {
        let device = synthetic::generate("prop", &config);
        let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
        let ports: Vec<ComponentId> = device
            .components_of(&parchmint::Entity::Port)
            .map(|c| c.id.clone())
            .collect();
        prop_assume!(ports.len() >= 2);
        let boundary_at = |p: f64| -> Vec<(ComponentId, f64)> {
            ports
                .iter()
                .enumerate()
                .map(|(i, id)| (id.clone(), if i == 0 { p } else { 0.0 }))
                .collect()
        };
        let q1 = network.solve(&boundary_at(1000.0)).unwrap().net_inflow(&ports[0]);
        let q3 = network.solve(&boundary_at(3000.0)).unwrap().net_inflow(&ports[0]);
        prop_assert!((q3 - 3.0 * q1).abs() <= q1.abs() * 1e-6 + 1e-18);
    }
}
