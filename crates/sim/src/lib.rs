//! # parchmint-sim
//!
//! Hydraulic simulation of ParchMint devices: pressure-driven
//! resistive-network flow ([`FlowNetwork`]) and steady-state concentration
//! transport ([`concentrations`]) — the analysis layer that turns a
//! benchmark netlist into predicted device behaviour (flow rates, split
//! ratios, mixing gradients), and the functional check behind claims like
//! "the gradient generator produces a monotone concentration ladder".
//!
//! The model is the standard network abstraction for continuous-flow LoCs:
//! laminar channels are hydraulic resistors (shallow-rectangular-duct
//! formula), junctions conserve mass, and junction mixing is flow-weighted.
//! Valve states from [`parchmint_control`] plug in directly: a closed valve
//! is an open circuit.
//!
//! ```
//! use parchmint::CompiledDevice;
//! use parchmint_sim::{FlowNetwork, Fluid};
//!
//! let chip = CompiledDevice::compile(
//!     parchmint_suite::by_name("rotary_pump_mixer").unwrap().device(),
//! );
//! // Drive in_a at 1 kPa against a grounded outlet; valves at rest.
//! // (in_a's inlet valve is normally closed, so nothing flows at rest.)
//! let network = FlowNetwork::new(&chip, Fluid::WATER);
//! let solution = network.solve(&[("in_a".into(), 1000.0), ("out".into(), 0.0)]).unwrap();
//! assert_eq!(solution.net_inflow(&"out".into()), 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod linear;
pub mod network;
pub mod resistance;
pub mod transport;

pub use network::{EdgeFlow, FlowNetwork, SimError, Solution};
pub use resistance::{component_resistance, ChannelGeometry, Fluid};
pub use transport::concentrations;

#[cfg(test)]
mod proptests;
