//! Dense linear-system solver (Gaussian elimination with partial pivoting).
//!
//! Hydraulic networks at benchmark scale produce systems of at most a few
//! thousand unknowns; a dense O(n³) solve is simple, dependency-free, and
//! comfortably fast. Conductance matrices are diagonally dominant, so
//! partial pivoting is ample for stability.

use std::fmt;

/// A dense row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// An `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        DenseMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Matrix dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the 0×0 matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Matrix–vector product `A·x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        (0..self.n)
            .map(|i| (0..self.n).map(|j| self[(i, j)] * x[j]).sum())
            .collect()
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

/// The system matrix was singular (up to the pivot tolerance).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrix;

impl fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("singular system matrix (network has a floating island?)")
    }
}

impl std::error::Error for SingularMatrix {}

/// Solves `A·x = b`, consuming the inputs.
///
/// # Examples
///
/// ```
/// use parchmint_sim::linear::{solve, DenseMatrix};
///
/// let mut a = DenseMatrix::zeros(2);
/// a[(0, 0)] = 2.0;
/// a[(1, 1)] = 4.0;
/// let x = solve(a, vec![6.0, 8.0]).unwrap();
/// assert_eq!(x, vec![3.0, 2.0]);
/// ```
pub fn solve(mut a: DenseMatrix, mut b: Vec<f64>) -> Result<Vec<f64>, SingularMatrix> {
    let n = a.len();
    assert_eq!(b.len(), n, "dimension mismatch");
    // Scale-aware pivot tolerance.
    let scale = a
        .data
        .iter()
        .fold(0.0f64, |acc, &v| acc.max(v.abs()))
        .max(f64::MIN_POSITIVE);
    let tol = scale * 1e-13;

    // One "iteration" per eliminated column; pivot swaps separately so
    // traces show how often dominance alone was insufficient.
    let mut pivot_swaps: u64 = 0;
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| {
                a[(r1, col)]
                    .abs()
                    .partial_cmp(&a[(r2, col)].abs())
                    .expect("no NaN in conductance matrices")
            })
            .expect("non-empty range");
        if a[(pivot_row, col)].abs() <= tol {
            return Err(SingularMatrix);
        }
        if pivot_row != col {
            pivot_swaps += 1;
            for j in 0..n {
                let tmp = a[(col, j)];
                a[(col, j)] = a[(pivot_row, j)];
                a[(pivot_row, j)] = tmp;
            }
            b.swap(col, pivot_row);
        }
        // Eliminate below.
        for row in (col + 1)..n {
            let factor = a[(row, col)] / a[(col, col)];
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                let v = a[(col, j)];
                a[(row, j)] -= factor * v;
            }
            b[row] -= factor * b[col];
        }
    }

    if parchmint_obs::enabled() {
        parchmint_obs::count("sim.linear.iterations", n as u64);
        parchmint_obs::count("sim.linear.pivot_swaps", pivot_swaps);
    }

    // Back-substitute.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for j in (row + 1)..n {
            sum -= a[(row, j)] * x[j];
        }
        x[row] = sum / a[(row, row)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let x = solve(DenseMatrix::identity(3), vec![1.0, -2.0, 3.5]).unwrap();
        assert_eq!(x, vec![1.0, -2.0, 3.5]);
    }

    #[test]
    fn two_by_two() {
        // 2x +  y = 5
        //  x + 3y = 10  → x = 1, y = 3
        let mut a = DenseMatrix::zeros(2);
        a[(0, 0)] = 2.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 3.0;
        let x = solve(a, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // 0x + 1y = 2 ; 1x + 0y = 3
        let mut a = DenseMatrix::zeros(2);
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        let x = solve(a, vec![2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let mut a = DenseMatrix::zeros(2);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 4.0;
        assert_eq!(solve(a, vec![1.0, 2.0]), Err(SingularMatrix));
        assert!(!SingularMatrix.to_string().is_empty());
    }

    #[test]
    fn tiny_uniform_scale_is_not_singular() {
        // Conductances of ~1e-14 must not trip the tolerance.
        let mut a = DenseMatrix::zeros(2);
        a[(0, 0)] = 2e-14;
        a[(0, 1)] = -1e-14;
        a[(1, 0)] = -1e-14;
        a[(1, 1)] = 2e-14;
        let x = solve(a.clone(), a.mul_vec(&[3.0, 7.0])).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-6);
        assert!((x[1] - 7.0).abs() < 1e-6);
    }

    #[test]
    fn random_round_trip() {
        // Deterministic pseudo-random well-conditioned matrix: diagonally
        // dominant by construction.
        let n = 12;
        let mut a = DenseMatrix::zeros(n);
        let mut seed = 0x12345u64;
        let mut rand = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for i in 0..n {
            let mut rowsum = 0.0;
            for j in 0..n {
                if i != j {
                    let v = rand();
                    a[(i, j)] = v;
                    rowsum += v.abs();
                }
            }
            a[(i, i)] = rowsum + 1.0;
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 4.0).collect();
        let b = a.mul_vec(&x_true);
        let x = solve(a, b).unwrap();
        for (computed, expected) in x.iter().zip(&x_true) {
            assert!(
                (computed - expected).abs() < 1e-9,
                "{computed} vs {expected}"
            );
        }
    }

    #[test]
    fn empty_system() {
        let x = solve(DenseMatrix::zeros(0), vec![]).unwrap();
        assert!(x.is_empty());
        assert!(DenseMatrix::zeros(0).is_empty());
    }
}
