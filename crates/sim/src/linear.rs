//! Dense linear-system solver (Gaussian elimination with partial pivoting).
//!
//! Hydraulic networks at benchmark scale produce systems of at most a few
//! thousand unknowns; a dense O(n³) solve is simple, dependency-free, and
//! comfortably fast. Conductance matrices are diagonally dominant, so
//! partial pivoting is ample for stability.
//!
//! The solver is resilient by construction: non-finite inputs are rejected
//! up front (never an internal panic), the elimination loop polls the
//! thread-local [`parchmint_resilience::Budget`] through an amortized
//! meter, and a [`SolvePolicy`] can relax the pivot tolerance and add
//! diagonal regularization for the degraded-mode fallback.

use parchmint_resilience::{Interrupted, Meter};
use std::fmt;

/// A dense row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// An `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        DenseMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Matrix dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the 0×0 matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Matrix–vector product `A·x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        (0..self.n)
            .map(|i| (0..self.n).map(|j| self[(i, j)] * x[j]).sum())
            .collect()
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

/// Why a linear solve did not produce a solution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// The system matrix was singular up to the pivot tolerance.
    Singular,
    /// The matrix or right-hand side contained a NaN or infinity.
    NonFinite,
    /// The installed execution budget tripped mid-elimination.
    Interrupted(Interrupted),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Singular => {
                f.write_str("singular system matrix (network has a floating island?)")
            }
            SolveError::NonFinite => f.write_str("non-finite value in system matrix or rhs"),
            SolveError::Interrupted(i) => write!(f, "solve {i}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Meter interval for the elimination loop: the budget is probed once per
/// this many eliminated rows.
pub const SOLVE_CHECK_INTERVAL: u32 = 256;

/// Tunable solve parameters; [`SolvePolicy::default`] is the strict solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolvePolicy {
    /// Pivot tolerance relative to the largest matrix entry.
    pub pivot_rel_tolerance: f64,
    /// Diagonal boost relative to the largest matrix entry (`0.0` = none).
    /// Non-zero values perturb the physics slightly, so callers must
    /// report the substitution as a degraded outcome.
    pub regularization: f64,
}

impl Default for SolvePolicy {
    fn default() -> Self {
        SolvePolicy {
            pivot_rel_tolerance: 1e-13,
            regularization: 0.0,
        }
    }
}

impl SolvePolicy {
    /// The bounded degraded-mode ladder: step 1, 2, 3 … relax the pivot
    /// tolerance and grow the diagonal regularization by 100× per step.
    pub fn relaxed(step: u32) -> SolvePolicy {
        SolvePolicy {
            pivot_rel_tolerance: 1e-13 * 10f64.powi(step as i32),
            regularization: 1e-12 * 100f64.powi(step as i32 - 1),
        }
    }
}

/// Solves `A·x = b` under the strict default policy, consuming the inputs.
///
/// # Examples
///
/// ```
/// use parchmint_sim::linear::{solve, DenseMatrix};
///
/// let mut a = DenseMatrix::zeros(2);
/// a[(0, 0)] = 2.0;
/// a[(1, 1)] = 4.0;
/// let x = solve(a, vec![6.0, 8.0]).unwrap();
/// assert_eq!(x, vec![3.0, 2.0]);
/// ```
pub fn solve(a: DenseMatrix, b: Vec<f64>) -> Result<Vec<f64>, SolveError> {
    solve_with(a, b, &SolvePolicy::default())
}

/// Solves `A·x = b` under an explicit [`SolvePolicy`].
pub fn solve_with(
    mut a: DenseMatrix,
    mut b: Vec<f64>,
    policy: &SolvePolicy,
) -> Result<Vec<f64>, SolveError> {
    let n = a.len();
    assert_eq!(b.len(), n, "dimension mismatch");
    // Reject poisoned systems up front: elimination on NaN would silently
    // produce NaN everywhere (and a NaN pivot comparison is meaningless).
    if a.data.iter().chain(b.iter()).any(|v| !v.is_finite()) {
        return Err(SolveError::NonFinite);
    }
    // Scale-aware pivot tolerance.
    let scale = a
        .data
        .iter()
        .fold(0.0f64, |acc, &v| acc.max(v.abs()))
        .max(f64::MIN_POSITIVE);
    if policy.regularization > 0.0 {
        for i in 0..n {
            a[(i, i)] += scale * policy.regularization;
        }
    }
    let tol = scale * policy.pivot_rel_tolerance;

    let mut meter = Meter::new(SOLVE_CHECK_INTERVAL);
    // One "iteration" per eliminated column; pivot swaps separately so
    // traces show how often dominance alone was insufficient.
    let mut pivot_swaps: u64 = 0;
    for col in 0..n {
        // Partial pivot (`total_cmp`: inputs are finite by the scan above,
        // and a NaN produced mid-elimination must not panic).
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| a[(r1, col)].abs().total_cmp(&a[(r2, col)].abs()))
            .expect("non-empty range");
        if a[(pivot_row, col)].abs() <= tol {
            return Err(SolveError::Singular);
        }
        if pivot_row != col {
            pivot_swaps += 1;
            for j in 0..n {
                let tmp = a[(col, j)];
                a[(col, j)] = a[(pivot_row, j)];
                a[(pivot_row, j)] = tmp;
            }
            b.swap(col, pivot_row);
        }
        // Eliminate below.
        for row in (col + 1)..n {
            meter.check().map_err(SolveError::Interrupted)?;
            let factor = a[(row, col)] / a[(col, col)];
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                let v = a[(col, j)];
                a[(row, j)] -= factor * v;
            }
            b[row] -= factor * b[col];
        }
    }

    if parchmint_obs::enabled() {
        parchmint_obs::count("sim.linear.iterations", n as u64);
        parchmint_obs::count("sim.linear.pivot_swaps", pivot_swaps);
    }

    // Back-substitute.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for j in (row + 1)..n {
            sum -= a[(row, j)] * x[j];
        }
        x[row] = sum / a[(row, row)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let x = solve(DenseMatrix::identity(3), vec![1.0, -2.0, 3.5]).unwrap();
        assert_eq!(x, vec![1.0, -2.0, 3.5]);
    }

    #[test]
    fn two_by_two() {
        // 2x +  y = 5
        //  x + 3y = 10  → x = 1, y = 3
        let mut a = DenseMatrix::zeros(2);
        a[(0, 0)] = 2.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 3.0;
        let x = solve(a, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // 0x + 1y = 2 ; 1x + 0y = 3
        let mut a = DenseMatrix::zeros(2);
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        let x = solve(a, vec![2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let mut a = DenseMatrix::zeros(2);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 4.0;
        assert_eq!(solve(a, vec![1.0, 2.0]), Err(SolveError::Singular));
        assert!(!SolveError::Singular.to_string().is_empty());
    }

    #[test]
    fn nan_input_is_an_error_not_a_panic() {
        let mut a = DenseMatrix::identity(2);
        a[(0, 1)] = f64::NAN;
        assert_eq!(solve(a, vec![1.0, 2.0]), Err(SolveError::NonFinite));
        let a = DenseMatrix::identity(2);
        assert_eq!(
            solve(a, vec![f64::INFINITY, 0.0]),
            Err(SolveError::NonFinite)
        );
    }

    #[test]
    fn regularization_recovers_a_singular_system() {
        // Rank-1 matrix: strictly singular, but a relaxed policy solves a
        // nearby well-posed system.
        let mut a = DenseMatrix::zeros(2);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 4.0;
        assert_eq!(
            solve_with(a.clone(), vec![1.0, 2.0], &SolvePolicy::default()),
            Err(SolveError::Singular)
        );
        let mut recovered = None;
        for step in 1..=3 {
            if let Ok(x) = solve_with(a.clone(), vec![1.0, 2.0], &SolvePolicy::relaxed(step)) {
                recovered = Some(x);
                break;
            }
        }
        let x = recovered.expect("relaxed ladder never recovered");
        // The regularized solution still approximately satisfies A·x = b.
        let r = a.mul_vec(&x);
        assert!((r[0] - 1.0).abs() < 1e-3, "residual {r:?}");
    }

    #[test]
    fn interruption_stops_the_elimination() {
        use parchmint_resilience::{Budget, StopReason};
        let n = 40;
        let mut a = DenseMatrix::identity(n);
        for i in 1..n {
            a[(i, i - 1)] = -0.25;
            a[(i - 1, i)] = -0.25;
        }
        let budget = Budget::unlimited();
        budget.cancel();
        let result = budget.enter(|| solve(a, vec![1.0; n]));
        assert_eq!(
            result,
            Err(SolveError::Interrupted(Interrupted {
                reason: StopReason::Cancelled
            }))
        );
    }

    #[test]
    fn tiny_uniform_scale_is_not_singular() {
        // Conductances of ~1e-14 must not trip the tolerance.
        let mut a = DenseMatrix::zeros(2);
        a[(0, 0)] = 2e-14;
        a[(0, 1)] = -1e-14;
        a[(1, 0)] = -1e-14;
        a[(1, 1)] = 2e-14;
        let x = solve(a.clone(), a.mul_vec(&[3.0, 7.0])).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-6);
        assert!((x[1] - 7.0).abs() < 1e-6);
    }

    #[test]
    fn random_round_trip() {
        // Deterministic pseudo-random well-conditioned matrix: diagonally
        // dominant by construction.
        let n = 12;
        let mut a = DenseMatrix::zeros(n);
        let mut seed = 0x12345u64;
        let mut rand = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for i in 0..n {
            let mut rowsum = 0.0;
            for j in 0..n {
                if i != j {
                    let v = rand();
                    a[(i, j)] = v;
                    rowsum += v.abs();
                }
            }
            a[(i, i)] = rowsum + 1.0;
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 4.0).collect();
        let b = a.mul_vec(&x_true);
        let x = solve(a, b).unwrap();
        for (computed, expected) in x.iter().zip(&x_true) {
            assert!(
                (computed - expected).abs() < 1e-9,
                "{computed} vs {expected}"
            );
        }
    }

    #[test]
    fn empty_system() {
        let x = solve(DenseMatrix::zeros(0), vec![]).unwrap();
        assert!(x.is_empty());
        assert!(DenseMatrix::zeros(0).is_empty());
    }
}
