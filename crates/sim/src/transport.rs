//! Steady-state concentration transport.
//!
//! Given a solved flow field and inlet concentrations, the steady-state
//! concentration at every node follows from flow-weighted mixing: a node's
//! outgoing concentration is the flow-weighted average of its inflows
//! (perfect mixing at junctions, pure advection in channels — the standard
//! network-level model for diffusive mixers). This is again a linear
//! system, solved with the same dense solver.

use crate::linear::{solve, DenseMatrix};
use crate::network::{SimError, Solution};
use parchmint::ComponentId;
use std::collections::BTreeMap;

/// Steady-state concentrations (arbitrary units, e.g. normalized 0..1) at
/// every node of a solved network.
///
/// `inlets` pins concentrations at source nodes (typically the inlet
/// ports). Nodes with no inflow and no pin rest at concentration 0.
///
/// # Examples
///
/// ```
/// use parchmint::CompiledDevice;
/// use parchmint_sim::{concentrations, Fluid, FlowNetwork};
///
/// let chip = CompiledDevice::compile(
///     parchmint_suite::by_name("molecular_gradient_generator").unwrap().device(),
/// );
/// let network = FlowNetwork::new(&chip, Fluid::WATER);
/// let boundary: Vec<(parchmint::ComponentId, f64)> = [
///     ("in_a", 1000.0), ("in_b", 1000.0),
///     ("out_0", 0.0), ("out_1", 0.0), ("out_2", 0.0), ("out_3", 0.0),
///     ("out_4", 0.0), ("out_5", 0.0), ("out_6", 0.0),
/// ].into_iter().map(|(n, p)| (n.into(), p)).collect();
/// let flow = network.solve(&boundary).unwrap();
/// let c = concentrations(&flow, &[("in_a".into(), 1.0), ("in_b".into(), 0.0)]).unwrap();
/// // The extreme outlets carry the pure streams.
/// assert!(c[&parchmint::ComponentId::new("out_0")] > 0.95);
/// assert!(c[&parchmint::ComponentId::new("out_6")] < 0.05);
/// ```
pub fn concentrations(
    solution: &Solution,
    inlets: &[(ComponentId, f64)],
) -> Result<BTreeMap<ComponentId, f64>, SimError> {
    // Collect the node set from the solution's flows and pressures.
    let mut ids: Vec<ComponentId> = Vec::new();
    let mut index: BTreeMap<ComponentId, usize> = BTreeMap::new();
    let intern =
        |id: &ComponentId, ids: &mut Vec<ComponentId>, index: &mut BTreeMap<ComponentId, usize>| {
            *index.entry(id.clone()).or_insert_with(|| {
                ids.push(id.clone());
                ids.len() - 1
            })
        };
    for flow in solution.flows() {
        intern(&flow.from, &mut ids, &mut index);
        intern(&flow.to, &mut ids, &mut index);
    }

    let mut pinned: BTreeMap<usize, f64> = BTreeMap::new();
    for (id, value) in inlets {
        let Some(&i) = index.get(id) else {
            return Err(SimError::UnknownNode(id.clone()));
        };
        pinned.insert(i, *value);
    }

    // Directed inflow lists: edge flow q from `from`→`to` when q > 0.
    // Flows at solver-noise level (≤ 1e-12 of the largest flow) are treated
    // as zero: a numerically tiny circulation between two otherwise
    // stagnant nodes would otherwise make their mixing equations singular.
    let max_flow = solution
        .flows()
        .iter()
        .fold(0.0f64, |acc, f| acc.max(f.flow.abs()));
    let threshold = max_flow * 1e-12;
    let n = ids.len();
    let mut inflows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for flow in solution.flows() {
        let (a, b) = (index[&flow.from], index[&flow.to]);
        if flow.flow > threshold {
            inflows[b].push((a, flow.flow));
        } else if flow.flow < -threshold {
            inflows[a].push((b, -flow.flow));
        }
    }

    // Unknowns: unpinned nodes. Equation per unknown i:
    //   (Σ q_in) · c_i − Σ q_in(j) · c_j = 0
    // Nodes without inflow get c_i = 0 (identity row).
    let unknowns: Vec<usize> = (0..n).filter(|i| !pinned.contains_key(i)).collect();
    let unknown_index: BTreeMap<usize, usize> =
        unknowns.iter().enumerate().map(|(k, &i)| (i, k)).collect();

    let m = unknowns.len();
    let mut a = DenseMatrix::zeros(m);
    let mut b = vec![0.0; m];
    for (row, &i) in unknowns.iter().enumerate() {
        let total_in: f64 = inflows[i].iter().map(|(_, q)| q).sum();
        if total_in <= 0.0 {
            a[(row, row)] = 1.0; // c_i = 0
            continue;
        }
        a[(row, row)] = total_in;
        for &(j, q) in &inflows[i] {
            match unknown_index.get(&j) {
                Some(&col) => a[(row, col)] -= q,
                None => b[row] += q * pinned[&j],
            }
        }
    }
    let x = solve(a, b).map_err(|_| SimError::Singular)?;

    let mut result = BTreeMap::new();
    for (i, id) in ids.iter().enumerate() {
        let c = match pinned.get(&i) {
            Some(&v) => v,
            None => x[unknown_index[&i]],
        };
        result.insert(id.clone(), c);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::FlowNetwork;
    use crate::resistance::Fluid;
    use parchmint::geometry::Span;
    use parchmint::{
        CompiledDevice, Component, Connection, Device, Entity, Layer, LayerType, Port, Target,
    };

    /// Two inlets merge at a node and exit: c_out is the flow-weighted mix.
    fn merge_device() -> Device {
        Device::builder("merge")
            .layer(Layer::new("flow", "flow", LayerType::Flow))
            .component(
                Component::new("a", "a", Entity::Port, ["flow"], Span::square(200))
                    .with_port(Port::new("p", "flow", 200, 100)),
            )
            .component(
                Component::new("b", "b", Entity::Port, ["flow"], Span::square(200))
                    .with_port(Port::new("p", "flow", 200, 100)),
            )
            .component(
                Component::new("j", "j", Entity::Node, ["flow"], Span::square(60))
                    .with_port(Port::new("w", "flow", 0, 30))
                    .with_port(Port::new("s", "flow", 30, 0))
                    .with_port(Port::new("e", "flow", 60, 30)),
            )
            .component(
                Component::new("out", "out", Entity::Port, ["flow"], Span::square(200))
                    .with_port(Port::new("p", "flow", 0, 100)),
            )
            .connection(Connection::new(
                "ca",
                "ca",
                "flow",
                Target::new("a", "p"),
                [Target::new("j", "w")],
            ))
            .connection(Connection::new(
                "cb",
                "cb",
                "flow",
                Target::new("b", "p"),
                [Target::new("j", "s")],
            ))
            .connection(Connection::new(
                "co",
                "co",
                "flow",
                Target::new("j", "e"),
                [Target::new("out", "p")],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn symmetric_merge_gives_half() {
        let device = merge_device();
        let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
        let flow = network
            .solve(&[
                ("a".into(), 1000.0),
                ("b".into(), 1000.0),
                ("out".into(), 0.0),
            ])
            .unwrap();
        let c = concentrations(&flow, &[("a".into(), 1.0), ("b".into(), 0.0)]).unwrap();
        let out = c[&ComponentId::new("out")];
        assert!(
            (out - 0.5).abs() < 1e-9,
            "symmetric mix should be 0.5, got {out}"
        );
    }

    #[test]
    fn asymmetric_pressures_bias_the_mix() {
        // Symmetric resistances: the junction sits at the mean of the three
        // rails (900 Pa), so inflows are q_a ∝ 600, q_b ∝ 300 → mix = 2/3.
        let device = merge_device();
        let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
        let flow = network
            .solve(&[
                ("a".into(), 1500.0),
                ("b".into(), 1200.0),
                ("out".into(), 0.0),
            ])
            .unwrap();
        let c = concentrations(&flow, &[("a".into(), 1.0), ("b".into(), 0.0)]).unwrap();
        let out = c[&ComponentId::new("out")];
        assert!((out - 2.0 / 3.0).abs() < 1e-9, "expected 2/3, got {out}");
    }

    #[test]
    fn concentration_is_conserved_along_a_chain() {
        // Single path: the outlet sees exactly the inlet concentration.
        let device = crate::network::tests_support::straight_device();
        let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
        let flow = network
            .solve(&[("in".into(), 1000.0), ("out".into(), 0.0)])
            .unwrap();
        let c = concentrations(&flow, &[("in".into(), 0.73)]).unwrap();
        assert!((c[&ComponentId::new("out")] - 0.73).abs() < 1e-12);
        assert!((c[&ComponentId::new("mid")] - 0.73).abs() < 1e-12);
    }

    #[test]
    fn unknown_inlet_errors() {
        let device = merge_device();
        let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
        let flow = network
            .solve(&[("a".into(), 1000.0), ("out".into(), 0.0)])
            .unwrap();
        assert!(matches!(
            concentrations(&flow, &[("ghost".into(), 1.0)]),
            Err(SimError::UnknownNode(_))
        ));
    }

    #[test]
    fn gradient_generator_produces_monotone_gradient() {
        let device = parchmint_suite::by_name("molecular_gradient_generator")
            .unwrap()
            .device();
        let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
        let mut boundary: Vec<(ComponentId, f64)> =
            vec![("in_a".into(), 1000.0), ("in_b".into(), 1000.0)];
        for i in 0..7 {
            boundary.push((format!("out_{i}").into(), 0.0));
        }
        let flow = network.solve(&boundary).unwrap();
        let c = concentrations(&flow, &[("in_a".into(), 1.0), ("in_b".into(), 0.0)]).unwrap();
        let outlet_values: Vec<f64> = (0..7)
            .map(|i| c[&ComponentId::new(format!("out_{i}"))])
            .collect();
        // The headline functional claim: a monotone concentration ladder,
        // pure at the rails.
        assert!(outlet_values[0] > 0.95, "{outlet_values:?}");
        assert!(outlet_values[6] < 0.05, "{outlet_values:?}");
        for pair in outlet_values.windows(2) {
            assert!(
                pair[0] >= pair[1] - 1e-9,
                "gradient must be monotone: {outlet_values:?}"
            );
        }
        // And it is a genuine gradient, not a step: interior values exist.
        assert!(
            outlet_values[3] > 0.2 && outlet_values[3] < 0.8,
            "{outlet_values:?}"
        );
    }

    #[test]
    fn hin_ladder_dilutes_monotonically() {
        let device = parchmint_suite::by_name("hemagglutination_inhibition")
            .unwrap()
            .device();
        let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
        let mut boundary: Vec<(ComponentId, f64)> = vec![
            ("in_serum".into(), 1200.0),
            ("in_diluent".into(), 1200.0),
            ("in_rbc".into(), 1200.0),
            ("out_waste".into(), 0.0),
        ];
        for i in 0..8 {
            boundary.push((format!("out_well_{i}").into(), 0.0));
        }
        let flow = network.solve(&boundary).unwrap();
        let c = concentrations(&flow, &[("in_serum".into(), 1.0)]).unwrap();
        let wells: Vec<f64> = (0..8)
            .map(|i| c[&ComponentId::new(format!("well_{i}"))])
            .collect();
        // Serum concentration must decay down the dilution ladder.
        assert!(wells[0] > wells[7], "{wells:?}");
        for pair in wells.windows(2) {
            assert!(
                pair[0] >= pair[1] - 1e-9,
                "dilution must be monotone: {wells:?}"
            );
        }
    }
}
