//! Multi-step protocols: sequences of planned fluid movements with the
//! pressure-line transitions between them.
//!
//! A wet-lab protocol on a valved chip is a sequence of flow steps (“load
//! sample”, “wash”, “elute”). Each step is a [`FlowPlan`]; executing the
//! protocol means holding each step's valve states in turn. The scheduler
//! compiles the per-step plans and the *transitions* — which control lines
//! to pressurize or vent between consecutive steps — which is what a
//! pressure controller actually consumes.

use crate::plan::{plan_flow, Actuation, ControlError, FlowPlan};
use parchmint::{CompiledDevice, ComponentId};
use std::collections::BTreeMap;
use std::fmt;

/// One named movement in a protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Human-readable step name (“load_sample”).
    pub name: String,
    /// Source component.
    pub from: ComponentId,
    /// Destination component.
    pub to: ComponentId,
}

impl Step {
    /// Creates a step.
    pub fn new(
        name: impl Into<String>,
        from: impl Into<ComponentId>,
        to: impl Into<ComponentId>,
    ) -> Self {
        Step {
            name: name.into(),
            from: from.into(),
            to: to.into(),
        }
    }
}

/// A compiled protocol step: the plan plus the line transitions that bring
/// the chip from the previous step's state into this one's.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledStep {
    /// The step as requested.
    pub step: Step,
    /// The planned path and valve states.
    pub plan: FlowPlan,
    /// Control lines that change relative to the previous step
    /// (or relative to all-vented for the first step).
    pub transitions: Vec<Actuation>,
}

/// A compiled multi-step protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    steps: Vec<ScheduledStep>,
}

impl Schedule {
    /// The compiled steps, in order.
    pub fn steps(&self) -> &[ScheduledStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for the empty protocol.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total line transitions across the protocol (the actuation cost a
    /// pressure controller pays; fewer is gentler on the membranes).
    pub fn transition_count(&self) -> usize {
        self.steps.iter().map(|s| s.transitions.len()).sum()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, scheduled) in self.steps.iter().enumerate() {
            writeln!(
                f,
                "step {i}: {} ({} -> {}, {} transitions)",
                scheduled.step.name,
                scheduled.step.from,
                scheduled.step.to,
                scheduled.transitions.len()
            )?;
        }
        Ok(())
    }
}

/// Why a protocol could not be compiled.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// A step failed to plan.
    Step {
        /// The failing step's name.
        step: String,
        /// The underlying planning failure.
        cause: ControlError,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Step { step, cause } => write!(f, "step `{step}`: {cause}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Compiles a protocol: plans every step and computes the pressure-line
/// transitions between consecutive steps.
///
/// The chip starts with every control line vented (all valves at rest);
/// the first step's transitions pressurize whatever its plan requires.
/// Between steps, only lines whose state *changes* appear — lines held
/// across steps are not re-actuated.
///
/// # Examples
///
/// ```
/// use parchmint::CompiledDevice;
/// use parchmint_control::{schedule, Step};
///
/// let chip = CompiledDevice::compile(
///     parchmint_suite::by_name("rotary_pump_mixer").unwrap().device(),
/// );
/// let protocol = schedule(&chip, &[
///     Step::new("load_a", "in_a", "out"),
///     Step::new("load_b", "in_b", "out"),
/// ]).unwrap();
/// assert_eq!(protocol.len(), 2);
/// // Switching inlets flips exactly the two inlet valves.
/// assert_eq!(protocol.steps()[1].transitions.len(), 2);
/// ```
pub fn schedule(
    compiled_device: &CompiledDevice,
    steps: &[Step],
) -> Result<Schedule, ProtocolError> {
    let _span = parchmint_obs::Span::enter("control.schedule");
    let mut compiled = Vec::with_capacity(steps.len());
    // Line state: pressurized control lines after the previous step.
    let mut held: BTreeMap<ComponentId, bool> = BTreeMap::new();

    for step in steps {
        let plan = plan_flow(compiled_device, &step.from, &step.to).map_err(|cause| {
            ProtocolError::Step {
                step: step.name.clone(),
                cause,
            }
        })?;
        let wanted: BTreeMap<ComponentId, bool> = plan
            .actuations(compiled_device)
            .into_iter()
            .map(|a| (a.component, a.pressurize))
            .collect();

        let mut transitions = Vec::new();
        // Lines this plan cares about, where the state differs from held.
        for (component, &pressurize) in &wanted {
            let current = held.get(component).copied().unwrap_or(false);
            if current != pressurize {
                transitions.push(Actuation {
                    component: component.clone(),
                    pressurize,
                });
            }
        }
        // Lines held pressurized by earlier steps that this plan no longer
        // constrains are vented back to rest.
        for (component, &pressurized) in &held {
            if pressurized && !wanted.contains_key(component) {
                transitions.push(Actuation {
                    component: component.clone(),
                    pressurize: false,
                });
            }
        }
        transitions.sort_by(|a, b| a.component.cmp(&b.component));

        held = wanted;
        compiled.push(ScheduledStep {
            step: step.clone(),
            plan,
            transitions,
        });
    }
    let schedule = Schedule { steps: compiled };
    if parchmint_obs::enabled() {
        parchmint_obs::count("control.schedule.steps", schedule.len() as u64);
        parchmint_obs::count(
            "control.schedule.transitions",
            schedule.transition_count() as u64,
        );
    }
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rotary() -> CompiledDevice {
        CompiledDevice::compile(
            parchmint_suite::by_name("rotary_pump_mixer")
                .unwrap()
                .device(),
        )
    }

    #[test]
    fn single_step_pressurizes_from_rest() {
        let device = rotary();
        let protocol = schedule(&device, &[Step::new("load", "in_a", "out")]).unwrap();
        assert_eq!(protocol.len(), 1);
        let first = &protocol.steps()[0];
        // From all-vented, only the lines that need pressure transition:
        // v_a opens (NC → pressurize). v_b stays closed (rest), v_load and
        // v_drain stay open (rest) — no transitions for those.
        assert_eq!(
            first.transitions,
            vec![Actuation {
                component: "v_a".into(),
                pressurize: true
            }]
        );
    }

    #[test]
    fn switching_inlets_flips_exactly_the_inlet_pair() {
        let device = rotary();
        let protocol = schedule(
            &device,
            &[
                Step::new("load_a", "in_a", "out"),
                Step::new("load_b", "in_b", "out"),
            ],
        )
        .unwrap();
        let second = &protocol.steps()[1];
        let names: Vec<(String, bool)> = second
            .transitions
            .iter()
            .map(|a| (a.component.to_string(), a.pressurize))
            .collect();
        assert_eq!(
            names,
            vec![("v_a".to_string(), false), ("v_b".to_string(), true)],
            "only the two inlet valves flip"
        );
    }

    #[test]
    fn repeated_step_needs_no_transitions() {
        let device = rotary();
        let protocol = schedule(
            &device,
            &[
                Step::new("load", "in_a", "out"),
                Step::new("load_again", "in_a", "out"),
            ],
        )
        .unwrap();
        assert!(protocol.steps()[1].transitions.is_empty());
        assert_eq!(protocol.transition_count(), 1);
    }

    #[test]
    fn chip_protocol_compiles_and_reports() {
        let device = CompiledDevice::compile(
            parchmint_suite::by_name("chromatin_immunoprecipitation")
                .unwrap()
                .device(),
        );
        let protocol = schedule(
            &device,
            &[
                Step::new("load_sample", "in_reagent_0", "out_waste"),
                Step::new("add_beads", "in_reagent_1", "out_waste"),
                Step::new("elute", "in_reagent_7", "out_eluate"),
            ],
        )
        .unwrap();
        assert_eq!(protocol.len(), 3);
        assert!(protocol.transition_count() > 0);
        let text = protocol.to_string();
        assert!(text.contains("step 0: load_sample"));
        assert!(text.contains("step 2: elute"));
        assert!(!protocol.is_empty());
    }

    #[test]
    fn failing_step_names_itself() {
        let device = rotary();
        let err = schedule(&device, &[Step::new("bad", "ghost", "out")]).unwrap_err();
        assert!(err.to_string().contains("bad"));
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn empty_protocol_is_empty() {
        let protocol = schedule(&rotary(), &[]).unwrap();
        assert!(protocol.is_empty());
        assert_eq!(protocol.transition_count(), 0);
    }
}
