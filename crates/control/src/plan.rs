//! Flow planning: which valves must open or close to drive fluid from one
//! component to another.

use parchmint::{CompiledDevice, ComponentId, ConnectionId, LayerType, ValveType};
use parchmint_graph::{shortest_path, Netlist};
use std::collections::BTreeMap;
use std::fmt;

/// The state a valve must hold during a flow step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValveState {
    /// The valve must pass flow.
    Open,
    /// The valve must block flow (isolating a branch off the path).
    Closed,
}

impl fmt::Display for ValveState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ValveState::Open => "open",
            ValveState::Closed => "closed",
        })
    }
}

/// One pressure-line actuation: pressurize or vent a valve's control line.
///
/// Whether a desired [`ValveState`] needs pressure depends on the valve's
/// rest polarity: a normally-open valve is *pressurized to close*; a
/// normally-closed valve is *pressurized to open*.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Actuation {
    /// The valve component.
    pub component: ComponentId,
    /// `true` to pressurize the control line, `false` to vent it.
    pub pressurize: bool,
}

impl fmt::Display for Actuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}",
            if self.pressurize {
                "pressurize"
            } else {
                "vent"
            },
            self.component
        )
    }
}

/// A planned fluid movement: the channel path plus the valve states that
/// realize and isolate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowPlan {
    /// Source component.
    pub from: ComponentId,
    /// Destination component.
    pub to: ComponentId,
    /// Components traversed, inclusive of the endpoints.
    pub components: Vec<ComponentId>,
    /// Connections traversed, in order (`components.len() - 1` entries).
    pub path: Vec<ConnectionId>,
    /// Required state for every valve whose state matters to this step.
    /// Valves not listed may rest.
    pub valve_states: BTreeMap<ComponentId, ValveState>,
}

impl FlowPlan {
    /// Number of channel hops.
    pub fn hops(&self) -> usize {
        self.path.len()
    }

    /// The pressure-line actuations needed to hold this plan, relative to
    /// each valve's rest polarity. Valves already resting in their required
    /// state are vented (no pressure), so the list covers *every* valve in
    /// `valve_states` with its explicit line state.
    pub fn actuations(&self, compiled: &CompiledDevice) -> Vec<Actuation> {
        let actuations = self
            .valve_states
            .iter()
            .filter_map(|(component, desired)| {
                let valve = compiled.valve_on(compiled.comp_ix(component.as_str())?)?;
                let rest_open = valve.valve_type == ValveType::NormallyOpen;
                let want_open = *desired == ValveState::Open;
                Some(Actuation {
                    component: component.clone(),
                    pressurize: rest_open != want_open,
                })
            })
            .collect::<Vec<_>>();
        parchmint_obs::count("control.plan.actuations", actuations.len() as u64);
        actuations
    }
}

impl fmt::Display for FlowPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} via {} hops (", self.from, self.to, self.hops())?;
        let mut first = true;
        for (valve, state) in &self.valve_states {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{valve}:{state}")?;
        }
        write!(f, ")")
    }
}

/// Why a flow step could not be planned.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ControlError {
    /// An endpoint component does not exist.
    UnknownComponent(ComponentId),
    /// No flow-layer path joins the endpoints.
    Unreachable {
        /// Source component.
        from: ComponentId,
        /// Destination component.
        to: ComponentId,
    },
    /// A valve that must be both open and closed at once (the path crosses
    /// a valve-isolated branch in two conflicting ways).
    Conflict(ComponentId),
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::UnknownComponent(id) => write!(f, "unknown component `{id}`"),
            ControlError::Unreachable { from, to } => {
                write!(f, "no flow path from `{from}` to `{to}`")
            }
            ControlError::Conflict(id) => {
                write!(f, "valve `{id}` would need to be open and closed at once")
            }
        }
    }
}

impl std::error::Error for ControlError {}

impl From<ControlError> for parchmint_resilience::PipelineError {
    fn from(error: ControlError) -> parchmint_resilience::PipelineError {
        use parchmint_resilience::PipelineError;
        match &error {
            ControlError::UnknownComponent(_) => PipelineError::fatal(error.to_string())
                .with_hint("plan endpoints must name components on a flow layer"),
            ControlError::Unreachable { .. } => PipelineError::fatal(error.to_string())
                .with_hint("check the valve map: every path may be pinched shut"),
            ControlError::Conflict(_) => PipelineError::fatal(error.to_string())
                .with_hint("the chosen path crosses a valve-isolated branch both ways"),
        }
    }
}

/// Plans fluid movement from `from` to `to` over the device's flow layers.
///
/// The plan opens every valve pinching an on-path connection and closes
/// every valve pinching a connection that *branches off* the path (shares a
/// component with it without being part of it), so the fluid column cannot
/// leak sideways.
///
/// The netlist projection and all valve/connection lookups go through the
/// compiled index.
///
/// # Examples
///
/// ```
/// use parchmint::CompiledDevice;
/// use parchmint_control::plan_flow;
///
/// let chip = CompiledDevice::compile(
///     parchmint_suite::by_name("rotary_pump_mixer").unwrap().device(),
/// );
/// let plan = plan_flow(&chip, &"in_a".into(), &"out".into()).unwrap();
/// assert_eq!(plan.hops(), 3);
/// // The sibling inlet must be sealed off.
/// assert_eq!(
///     plan.valve_states.get(&parchmint::ComponentId::new("v_b")),
///     Some(&parchmint_control::ValveState::Closed)
/// );
/// ```
pub fn plan_flow(
    compiled: &CompiledDevice,
    from: &ComponentId,
    to: &ComponentId,
) -> Result<FlowPlan, ControlError> {
    let _span = parchmint_obs::Span::enter("control.plan");
    parchmint_resilience::fault::inject("control.plan");
    let netlist = Netlist::new_layer(compiled, LayerType::Flow);
    let start = netlist
        .node_of(from)
        .ok_or_else(|| ControlError::UnknownComponent(from.clone()))?;
    let goal = netlist
        .node_of(to)
        .ok_or_else(|| ControlError::UnknownComponent(to.clone()))?;

    let node_path =
        shortest_path(netlist.graph(), start, goal).ok_or_else(|| ControlError::Unreachable {
            from: from.clone(),
            to: to.clone(),
        })?;

    // Recover the connection used for each hop: any edge between the two
    // consecutive nodes (parallel edges are interchangeable for planning).
    let mut path = Vec::with_capacity(node_path.len().saturating_sub(1));
    for window in node_path.windows(2) {
        let connection = netlist
            .graph()
            .incident_edges(window[0])
            .find(|&edge| netlist.graph().opposite(window[0], edge) == window[1])
            .map(|edge| netlist.graph().edge(edge).clone())
            .expect("path edges exist");
        path.push(connection);
    }

    let components: Vec<ComponentId> = node_path
        .iter()
        .map(|&n| netlist.component_at(n).clone())
        .collect();

    // Valve states: open on-path, closed on branches touching the path.
    let mut valve_states = BTreeMap::new();
    for (valve, _, controlled) in compiled.valves() {
        let Some(controlled) = controlled.map(|c| compiled.connection(c)) else {
            continue;
        };
        let desired = if path.contains(&valve.controls) {
            Some(ValveState::Open)
        } else if controlled
            .terminals()
            .any(|t| components.contains(&t.component))
        {
            Some(ValveState::Closed)
        } else {
            None
        };
        if let Some(state) = desired {
            match valve_states.get(&valve.component) {
                Some(existing) if *existing != state => {
                    return Err(ControlError::Conflict(valve.component.clone()));
                }
                _ => {
                    valve_states.insert(valve.component.clone(), state);
                }
            }
        }
    }

    if parchmint_obs::enabled() {
        parchmint_obs::count("control.plan.hops", path.len() as u64);
        parchmint_obs::count("control.plan.valves", valve_states.len() as u64);
    }

    Ok(FlowPlan {
        from: from.clone(),
        to: to.clone(),
        components,
        path,
        valve_states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rotary() -> CompiledDevice {
        CompiledDevice::compile(
            parchmint_suite::by_name("rotary_pump_mixer")
                .unwrap()
                .device(),
        )
    }

    #[test]
    fn plans_the_main_flow_path() {
        let device = rotary();
        let plan = plan_flow(&device, &"in_a".into(), &"out".into()).unwrap();
        assert_eq!(plan.components.first().unwrap(), &ComponentId::new("in_a"));
        assert_eq!(plan.components.last().unwrap(), &ComponentId::new("out"));
        assert_eq!(plan.hops(), 3);
        // v_a gates the first hop: open. v_b gates the sibling inlet: closed.
        assert_eq!(
            plan.valve_states.get(&ComponentId::new("v_a")),
            Some(&ValveState::Open)
        );
        assert_eq!(
            plan.valve_states.get(&ComponentId::new("v_b")),
            Some(&ValveState::Closed)
        );
        assert_eq!(
            plan.valve_states.get(&ComponentId::new("v_load")),
            Some(&ValveState::Open)
        );
        assert_eq!(
            plan.valve_states.get(&ComponentId::new("v_drain")),
            Some(&ValveState::Open)
        );
    }

    #[test]
    fn actuations_respect_rest_polarity() {
        let device = rotary();
        let plan = plan_flow(&device, &"in_a".into(), &"out".into()).unwrap();
        let actuations = plan.actuations(&device);
        let find = |id: &str| {
            actuations
                .iter()
                .find(|a| a.component == *id)
                .unwrap_or_else(|| panic!("no actuation for {id}"))
        };
        // v_a is normally closed and must open → pressurize.
        assert!(find("v_a").pressurize);
        // v_b is normally closed and must stay closed → vent.
        assert!(!find("v_b").pressurize);
        // v_load is normally open and must stay open → vent.
        assert!(!find("v_load").pressurize);
    }

    #[test]
    fn unknown_endpoints_error() {
        let device = rotary();
        let err = plan_flow(&device, &"ghost".into(), &"out".into()).unwrap_err();
        assert!(matches!(err, ControlError::UnknownComponent(_)));
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn unreachable_endpoints_error() {
        let device = rotary();
        // Control I/O ports are not on the flow network.
        let err = plan_flow(&device, &"in_a".into(), &"ctl_v_a".into()).unwrap_err();
        assert!(matches!(err, ControlError::Unreachable { .. }));
    }

    #[test]
    fn plan_on_valve_heavy_chip_isolates_siblings() {
        let device = CompiledDevice::compile(
            parchmint_suite::by_name("chromatin_immunoprecipitation")
                .unwrap()
                .device(),
        );
        let plan = plan_flow(&device, &"in_reagent_0".into(), &"out_eluate".into()).unwrap();
        // Reagent 0's inlet valve must open; every other inlet valve whose
        // channel touches the shared bus stays at rest or closes — at
        // minimum the plan must not ask any sibling inlet valve to open.
        assert_eq!(
            plan.valve_states.get(&ComponentId::new("v_in_0")),
            Some(&ValveState::Open)
        );
        for i in 1..8 {
            let sibling: ComponentId = format!("v_in_{i}").into();
            assert_ne!(
                plan.valve_states.get(&sibling),
                Some(&ValveState::Open),
                "sibling inlet {i} must not open"
            );
        }
        // The waste valve (normally open, touching the collect node) closes.
        assert_eq!(
            plan.valve_states.get(&ComponentId::new("v_waste")),
            Some(&ValveState::Closed)
        );
    }

    #[test]
    fn plan_display_and_state_display() {
        let device = rotary();
        let plan = plan_flow(&device, &"in_a".into(), &"out".into()).unwrap();
        let text = plan.to_string();
        assert!(text.contains("in_a -> out"));
        assert!(text.contains("v_b:closed"));
        assert_eq!(ValveState::Open.to_string(), "open");
    }

    #[test]
    fn valveless_devices_plan_trivially() {
        let device = CompiledDevice::compile(
            parchmint_suite::by_name("molecular_gradient_generator")
                .unwrap()
                .device(),
        );
        let plan = plan_flow(&device, &"in_a".into(), &"out_0".into()).unwrap();
        assert!(plan.valve_states.is_empty());
        assert!(plan.hops() >= 2);
        assert!(plan.actuations(&device).is_empty());
    }
}
