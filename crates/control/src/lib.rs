//! # parchmint-control
//!
//! Valve-state control synthesis for ParchMint devices — the downstream
//! consumer that makes the 1.2 valve maps actionable. Given a device and a
//! pair of endpoints, [`plan_flow`] finds the channel path over the flow
//! layers, opens every valve pinching it, closes every valve that would let
//! the fluid column leak into a branch, and derives the pressure-line
//! [`Actuation`]s from each valve's rest polarity.
//!
//! ```
//! use parchmint::CompiledDevice;
//! use parchmint_control::{plan_flow, ValveState};
//!
//! let chip = CompiledDevice::compile(
//!     parchmint_suite::by_name("rotary_pump_mixer").unwrap().device(),
//! );
//! let plan = plan_flow(&chip, &"in_b".into(), &"out".into()).unwrap();
//! assert_eq!(plan.valve_states.get(&parchmint::ComponentId::new("v_b")), Some(&ValveState::Open));
//! assert_eq!(plan.valve_states.get(&parchmint::ComponentId::new("v_a")), Some(&ValveState::Closed));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod plan;
pub mod protocol;

pub use plan::{plan_flow, Actuation, ControlError, FlowPlan, ValveState};
pub use protocol::{schedule, ProtocolError, Schedule, ScheduledStep, Step};
