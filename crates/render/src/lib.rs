//! # parchmint-render
//!
//! SVG rendering of ParchMint device layouts — regenerates the paper's
//! device-layout figures (experiment E3). Placed/routed devices render
//! physically; bare netlists render as deterministic schematics.
//!
//! ```
//! use parchmint_render::render_svg_default;
//!
//! let chip = parchmint_suite::by_name("logic_gate_or").unwrap().device();
//! let svg = render_svg_default(&chip);
//! assert!(svg.starts_with("<svg"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod style;
pub mod svg;

pub use style::Theme;
pub use svg::{render_svg, render_svg_default};
