//! SVG rendering of ParchMint devices.
//!
//! Placed/routed devices render to physical layouts: component footprints
//! at their placed locations (filled by entity class), routed channels as
//! polylines (stroked by layer type). Unplaced netlists fall back to a
//! deterministic schematic grid so every benchmark is renderable — this is
//! what regenerates the paper's device-layout figures (experiment E3).

use crate::style::Theme;
use parchmint::geometry::{Point, Span};
use parchmint::{Device, LayerType};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders `device` to an SVG document string.
pub fn render_svg(device: &Device, theme: &Theme) -> String {
    let positions = placement_or_schematic(device);
    let bounds = drawing_bounds(device, &positions);
    let s = 1.0 / theme.microns_per_unit;
    let width = (bounds.x as f64 * s).ceil().max(64.0);
    let height = (bounds.y as f64 * s).ceil().max(64.0);

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
    );
    let _ = writeln!(svg, r#"<title>{}</title>"#, escape(&device.name));
    let _ = writeln!(
        svg,
        r#"<rect x="0" y="0" width="{width}" height="{height}" fill="{}" stroke="{}" stroke-width="1"/>"#,
        theme.background, theme.die_stroke
    );

    // Flip y so device coordinates (y up) render conventionally.
    let fy = |y: f64| height - y;

    // Channels first, under the components.
    for feature in device.features.iter().filter_map(|f| f.as_connection()) {
        let layer_type = device
            .layer(feature.layer.as_str())
            .map(|l| l.layer_type)
            .unwrap_or(LayerType::Flow);
        let stroke = theme.layer_stroke(layer_type);
        let stroke_width = (feature.width as f64 * s).max(1.0);
        let points: Vec<String> = feature
            .waypoints
            .iter()
            .map(|p| format!("{:.1},{:.1}", p.x as f64 * s, fy(p.y as f64 * s)))
            .collect();
        if points.len() >= 2 {
            let _ = writeln!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="{stroke_width:.1}" stroke-linejoin="round" opacity="0.85"/>"#,
                points.join(" ")
            );
        }
    }

    // Schematic connections when the device carries no routed geometry.
    if !device.connections.is_empty() && device.features.iter().all(|f| f.as_connection().is_none())
    {
        for connection in &device.connections {
            let layer_type = device
                .layer(connection.layer.as_str())
                .map(|l| l.layer_type)
                .unwrap_or(LayerType::Flow);
            let stroke = theme.layer_stroke(layer_type);
            let Some(&src) = positions.get(connection.source.component.as_str()) else {
                continue;
            };
            let src_c = centre(device, connection.source.component.as_str(), src);
            for sink in &connection.sinks {
                let Some(&dst) = positions.get(sink.component.as_str()) else {
                    continue;
                };
                let dst_c = centre(device, sink.component.as_str(), dst);
                let _ = writeln!(
                    svg,
                    r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{stroke}" stroke-width="1.2" opacity="0.6"/>"#,
                    src_c.x as f64 * s,
                    fy(src_c.y as f64 * s),
                    dst_c.x as f64 * s,
                    fy(dst_c.y as f64 * s),
                );
            }
        }
    }

    // Components.
    for component in &device.components {
        let Some(&origin) = positions.get(component.id.as_str()) else {
            continue;
        };
        let fill = theme.class_fill(component.entity.class());
        let x = origin.x as f64 * s;
        let w = (component.span.x as f64 * s).max(2.0);
        let h = (component.span.y as f64 * s).max(2.0);
        let y = fy(origin.y as f64 * s) - h;
        let _ = writeln!(
            svg,
            r##"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{h:.1}" fill="{fill}" stroke="#00000055" stroke-width="0.6" rx="1"/>"##
        );
        if theme.labels && w > 24.0 {
            let _ = writeln!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" font-size="6" fill="{}" text-anchor="middle" font-family="monospace">{}</text>"#,
                x + w / 2.0,
                y + h / 2.0 + 2.0,
                theme.label,
                escape(component.id.as_str())
            );
        }
    }

    svg.push_str("</svg>\n");
    svg
}

/// Renders with the default theme.
pub fn render_svg_default(device: &Device) -> String {
    render_svg(device, &Theme::default())
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn centre(device: &Device, id: &str, origin: Point) -> Point {
    let span = device.component(id).map(|c| c.span).unwrap_or_default();
    Point::new(origin.x + span.x / 2, origin.y + span.y / 2)
}

/// Placed positions from features, or a deterministic schematic grid.
fn placement_or_schematic(device: &Device) -> BTreeMap<String, Point> {
    let mut positions = BTreeMap::new();
    for feature in device.features.iter().filter_map(|f| f.as_component()) {
        positions.insert(feature.component.to_string(), feature.location);
    }
    if positions.len() == device.components.len() && !device.components.is_empty() {
        return positions;
    }
    // Schematic fallback: row-major grid in declaration order.
    positions.clear();
    let n = device.components.len().max(1);
    let cols = (n as f64).sqrt().ceil() as usize;
    let pitch_x = device
        .components
        .iter()
        .map(|c| c.span.x)
        .max()
        .unwrap_or(1000)
        + 600;
    let pitch_y = device
        .components
        .iter()
        .map(|c| c.span.y)
        .max()
        .unwrap_or(1000)
        + 600;
    for (i, component) in device.components.iter().enumerate() {
        let col = (i % cols) as i64;
        let row = (i / cols) as i64;
        positions.insert(
            component.id.to_string(),
            Point::new(300 + col * pitch_x, 300 + row * pitch_y),
        );
    }
    positions
}

fn drawing_bounds(device: &Device, positions: &BTreeMap<String, Point>) -> Span {
    let declared = device.declared_bounds().unwrap_or_default();
    let mut max = Point::new(declared.x, declared.y);
    for component in &device.components {
        if let Some(&origin) = positions.get(component.id.as_str()) {
            max = max.max(Point::new(
                origin.x + component.span.x + 300,
                origin.y + component.span.y + 300,
            ));
        }
    }
    for feature in device.features.iter().filter_map(|f| f.as_connection()) {
        for p in &feature.waypoints {
            max = max.max(Point::new(p.x + 300, p.y + 300));
        }
    }
    Span::new(max.x.max(1000), max.y.max(1000))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_valid_svg(svg: &str) {
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Balanced: every element line is self-closing or the svg tags.
        assert_eq!(svg.matches("<svg").count(), 1);
        assert_eq!(svg.matches("</svg>").count(), 1);
    }

    #[test]
    fn renders_unplaced_benchmark_schematically() {
        let d = parchmint_suite::by_name("molecular_gradient_generator")
            .unwrap()
            .device();
        let svg = render_svg_default(&d);
        assert_valid_svg(&svg);
        // All components appear.
        assert_eq!(svg.matches("<rect").count(), 1 + d.components.len());
        // Schematic lines for connections.
        assert!(svg.matches("<line").count() >= d.connections.len());
    }

    #[test]
    fn renders_placed_and_routed_device_with_polylines() {
        let mut d = parchmint_suite::by_name("logic_gate_or").unwrap().device();
        parchmint_pnr::place_and_route(
            &mut d,
            parchmint_pnr::PlacerChoice::Greedy,
            parchmint_pnr::RouterChoice::AStar,
        );
        let svg = render_svg_default(&d);
        assert_valid_svg(&svg);
        assert!(svg.contains("<polyline"), "routed channels must render");
        assert!(!svg.contains("<line "), "no schematic fallback once routed");
    }

    #[test]
    fn empty_device_renders_minimal_document() {
        let svg = render_svg_default(&parchmint::Device::new("empty"));
        assert_valid_svg(&svg);
    }

    #[test]
    fn labels_can_be_disabled() {
        let d = parchmint_suite::by_name("logic_gate_or").unwrap().device();
        let with = render_svg(&d, &Theme::default());
        let without = render_svg(
            &d,
            &Theme {
                labels: false,
                ..Theme::default()
            },
        );
        assert!(with.contains("<text"));
        assert!(!without.contains("<text"));
    }

    #[test]
    fn escapes_markup_in_names() {
        let mut d = parchmint::Device::new("a<b&c");
        d.set_declared_bounds(parchmint::geometry::Span::square(1000));
        let svg = render_svg_default(&d);
        assert!(svg.contains("a&lt;b&amp;c"));
    }

    #[test]
    fn control_layer_channels_use_control_stroke() {
        let mut d = parchmint_suite::by_name("rotary_pump_mixer")
            .unwrap()
            .device();
        parchmint_pnr::place_and_route(
            &mut d,
            parchmint_pnr::PlacerChoice::Greedy,
            parchmint_pnr::RouterChoice::AStar,
        );
        let svg = render_svg_default(&d);
        let theme = Theme::default();
        assert!(svg.contains(theme.layer_stroke(LayerType::Control)));
        assert!(svg.contains(theme.layer_stroke(LayerType::Flow)));
    }
}
