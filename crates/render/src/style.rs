//! Rendering theme: colors and stroke widths.

use parchmint::{EntityClass, LayerType};

/// Visual theme for SVG output.
#[derive(Debug, Clone, PartialEq)]
pub struct Theme {
    /// Page background fill.
    pub background: &'static str,
    /// Die outline stroke.
    pub die_stroke: &'static str,
    /// Component label color.
    pub label: &'static str,
    /// Whether to draw component id labels.
    pub labels: bool,
    /// Scale: micrometres per SVG unit (larger = smaller image).
    pub microns_per_unit: f64,
}

impl Default for Theme {
    fn default() -> Self {
        Theme {
            background: "#ffffff",
            die_stroke: "#333333",
            label: "#222222",
            labels: true,
            microns_per_unit: 20.0,
        }
    }
}

impl Theme {
    /// Fill color for a component of the given entity class.
    pub fn class_fill(&self, class: EntityClass) -> &'static str {
        match class {
            EntityClass::Io => "#8d99ae",
            EntityClass::Mixing => "#2a9d8f",
            EntityClass::Chamber => "#e9c46a",
            EntityClass::Droplet => "#f4a261",
            EntityClass::Distribution => "#457b9d",
            EntityClass::Control => "#e76f51",
            EntityClass::Other => "#b5b5b5",
        }
    }

    /// Stroke color for channels on a layer type.
    pub fn layer_stroke(&self, layer: LayerType) -> &'static str {
        match layer {
            LayerType::Flow => "#1d3557",
            LayerType::Control => "#c1121f",
            LayerType::Integration => "#6a0dad",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_has_a_distinct_fill() {
        let theme = Theme::default();
        let mut fills: Vec<&str> = EntityClass::ALL
            .iter()
            .map(|c| theme.class_fill(*c))
            .collect();
        fills.sort_unstable();
        let n = fills.len();
        fills.dedup();
        assert_eq!(fills.len(), n);
    }

    #[test]
    fn layer_strokes_differ() {
        let t = Theme::default();
        assert_ne!(
            t.layer_stroke(LayerType::Flow),
            t.layer_stroke(LayerType::Control)
        );
        assert!(t.microns_per_unit > 0.0);
    }
}
