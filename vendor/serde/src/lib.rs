//! Offline stand-in for [`serde`](https://serde.rs).
//!
//! This vendored crate exists because the build environment has no network
//! access and no crates.io mirror: it reimplements the subset of serde's API
//! that this workspace uses, keeping the same trait and module names so the
//! workspace code is source-compatible with the real crate.
//!
//! The big simplification is the data model. Real serde drives a visitor
//! through the serializer/deserializer; here both directions pass through an
//! owned dynamic tree, [`Fragment`]. A `Serialize` impl renders itself into a
//! `Fragment`; a `Deserializer` produces one. This trades streaming
//! performance for a drastically smaller implementation while preserving
//! observable behavior (field order, `rename`/`flatten`/`default`/`tag`
//! attribute semantics, error propagation through `Error::custom`).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The dynamic JSON-shaped tree both directions of (de)serialization pass
/// through. Maps preserve insertion order so derived struct serialization
/// keeps declaration order, exactly like real serde.
#[derive(Debug, Clone, PartialEq)]
pub enum Fragment {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer outside `i64` range.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Fragment>),
    /// An ordered map with string keys.
    Map(Vec<(String, Fragment)>),
}

impl Fragment {
    /// A short noun for error messages ("a string", "a map", ...).
    pub fn kind(&self) -> &'static str {
        match self {
            Fragment::Null => "null",
            Fragment::Bool(_) => "a boolean",
            Fragment::I64(_) | Fragment::U64(_) => "an integer",
            Fragment::F64(_) => "a floating-point number",
            Fragment::Str(_) => "a string",
            Fragment::Seq(_) => "a sequence",
            Fragment::Map(_) => "a map",
        }
    }
}

/// Removes and returns the entry for `key` from an order-preserving fragment
/// map. Used by derived `Deserialize` impls.
pub fn fragment_take(map: &mut Vec<(String, Fragment)>, key: &str) -> Option<Fragment> {
    let index = map.iter().position(|(k, _)| k == key)?;
    Some(map.remove(index).1)
}

// ---------------------------------------------------------------------------
// Error traits
// ---------------------------------------------------------------------------

/// Serialization-side support traits.
pub mod ser {
    use std::fmt::Display;

    /// Trait every `Serializer::Error` must implement.
    pub trait Error: Sized {
        /// Builds an error carrying an arbitrary message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Deserialization-side support traits.
pub mod de {
    use std::fmt::Display;

    /// Trait every `Deserializer::Error` must implement.
    pub trait Error: Sized {
        /// Builds an error carrying an arbitrary message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// Marker for types deserializable without borrowing from the input.
    /// With the owned [`Fragment`](crate::Fragment) model every
    /// `Deserialize` type qualifies.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T: for<'de> crate::Deserialize<'de>> DeserializeOwned for T {}
}

/// A concrete error for the in-crate fragment (de)serializers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentError(pub String);

impl fmt::Display for FragmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for FragmentError {}

impl ser::Error for FragmentError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        FragmentError(msg.to_string())
    }
}

impl de::Error for FragmentError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        FragmentError(msg.to_string())
    }
}

// ---------------------------------------------------------------------------
// Core traits
// ---------------------------------------------------------------------------

/// A consumer of [`Fragment`]s; the only required method takes a whole
/// fragment, with typed convenience methods (`serialize_str`, ...) layered
/// on top so manual impls read like real serde.
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error type; must support `custom` messages.
    type Error: ser::Error;

    /// Consumes a complete fragment tree.
    fn serialize_fragment(self, fragment: Fragment) -> Result<Self::Ok, Self::Error>;

    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_fragment(Fragment::Str(v.to_owned()))
    }

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_fragment(Fragment::Bool(v))
    }

    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_fragment(Fragment::I64(v))
    }

    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        if let Ok(i) = i64::try_from(v) {
            self.serialize_fragment(Fragment::I64(i))
        } else {
            self.serialize_fragment(Fragment::U64(v))
        }
    }

    /// Serializes a floating-point number.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_fragment(Fragment::F64(v))
    }

    /// Serializes a unit value as null.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_fragment(Fragment::Null)
    }

    /// Serializes `None` as null.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_fragment(Fragment::Null)
    }

    /// Serializes the payload of a `Some`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error> {
        value.serialize(self)
    }
}

/// A type that can render itself into any [`Serializer`].
pub trait Serialize {
    /// Serializes `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A producer of [`Fragment`]s.
pub trait Deserializer<'de>: Sized {
    /// Error type; must support `custom` messages.
    type Error: de::Error;

    /// Produces the complete fragment tree of the input.
    fn deserialize_fragment(self) -> Result<Fragment, Self::Error>;
}

/// A type constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

// ---------------------------------------------------------------------------
// Fragment-backed serializer / deserializer
// ---------------------------------------------------------------------------

/// Serializer whose output *is* the fragment tree.
pub struct FragmentSerializer;

impl Serializer for FragmentSerializer {
    type Ok = Fragment;
    type Error = FragmentError;

    fn serialize_fragment(self, fragment: Fragment) -> Result<Fragment, FragmentError> {
        Ok(fragment)
    }
}

/// Deserializer reading from an owned fragment tree.
pub struct FragmentDeserializer(pub Fragment);

impl<'de> Deserializer<'de> for FragmentDeserializer {
    type Error = FragmentError;

    fn deserialize_fragment(self) -> Result<Fragment, FragmentError> {
        Ok(self.0)
    }
}

/// Renders any `Serialize` value into a fragment tree.
pub fn to_fragment<T: Serialize + ?Sized>(value: &T) -> Result<Fragment, FragmentError> {
    value.serialize(FragmentSerializer)
}

/// Builds any `Deserialize` value from a fragment tree.
pub fn from_fragment<T: for<'de> Deserialize<'de>>(fragment: Fragment) -> Result<T, FragmentError> {
    T::deserialize(FragmentDeserializer(fragment))
}

// ---------------------------------------------------------------------------
// Impls for standard types
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

macro_rules! serialize_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! serialize_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn collect_seq<S, I>(serializer: S, items: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    I: IntoIterator,
    I::Item: Serialize,
{
    let mut out = Vec::new();
    for item in items {
        out.push(to_fragment(&item).map_err(<S::Error as ser::Error>::custom)?);
    }
    serializer.serialize_fragment(Fragment::Seq(out))
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(serializer, self.iter())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(serializer, self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(serializer, self.iter())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(serializer, self.iter())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut entries = Vec::with_capacity(self.len());
        for (key, value) in self {
            let key = match to_fragment(key).map_err(<S::Error as ser::Error>::custom)? {
                Fragment::Str(s) => s,
                other => {
                    return Err(<S::Error as ser::Error>::custom(format!(
                        "map key must serialize to a string, found {}",
                        other.kind()
                    )))
                }
            };
            entries.push((
                key,
                to_fragment(value).map_err(<S::Error as ser::Error>::custom)?,
            ));
        }
        serializer.serialize_fragment(Fragment::Map(entries))
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident : $index:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![
                    $(to_fragment(&self.$index).map_err(<S::Error as ser::Error>::custom)?,)+
                ];
                serializer.serialize_fragment(Fragment::Seq(items))
            }
        }
    )*};
}
serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// -- Deserialize ------------------------------------------------------------

fn type_error<E: de::Error, T>(expected: &str, found: &Fragment) -> Result<T, E> {
    Err(E::custom(format!(
        "invalid type: expected {expected}, found {}",
        found.kind()
    )))
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_fragment()? {
            Fragment::Bool(b) => Ok(b),
            other => type_error("a boolean", &other),
        }
    }
}

macro_rules! deserialize_int {
    ($($ty:ty),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let fragment = deserializer.deserialize_fragment()?;
                let out = match fragment {
                    Fragment::I64(v) => <$ty>::try_from(v).ok(),
                    Fragment::U64(v) => <$ty>::try_from(v).ok(),
                    Fragment::F64(v) if v.fract() == 0.0 && v.is_finite() => {
                        <$ty>::try_from(v as i64).ok()
                    }
                    other => return type_error("an integer", &other),
                };
                out.ok_or_else(|| {
                    <D::Error as de::Error>::custom(concat!(
                        "integer out of range for ",
                        stringify!($ty)
                    ))
                })
            }
        }
    )*};
}
deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_fragment()? {
            Fragment::F64(v) => Ok(v),
            Fragment::I64(v) => Ok(v as f64),
            Fragment::U64(v) => Ok(v as f64),
            other => type_error("a number", &other),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_fragment()? {
            Fragment::Str(s) => Ok(s),
            other => type_error("a string", &other),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(<D::Error as de::Error>::custom(
                "expected a single character",
            )),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_fragment()? {
            Fragment::Null => Ok(()),
            other => type_error("null", &other),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_fragment()? {
            Fragment::Null => Ok(None),
            other => from_fragment(other)
                .map(Some)
                .map_err(|e| <D::Error as de::Error>::custom(e)),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_fragment()? {
            Fragment::Seq(items) => items
                .into_iter()
                .map(|f| from_fragment(f).map_err(|e| <D::Error as de::Error>::custom(e)))
                .collect(),
            other => type_error("a sequence", &other),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items: Vec<T> = Vec::deserialize(deserializer)?;
        let len = items.len();
        items.try_into().map_err(|_| {
            <D::Error as de::Error>::custom(format!(
                "invalid length {len}, expected an array of {N} elements"
            ))
        })
    }
}

impl<'de, T: for<'a> Deserialize<'a> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items: Vec<T> = Vec::deserialize(deserializer)?;
        Ok(items.into_iter().collect())
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: for<'a> Deserialize<'a> + Ord,
    V: for<'a> Deserialize<'a>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_fragment()? {
            Fragment::Map(entries) => {
                let mut map = BTreeMap::new();
                for (key, value) in entries {
                    let key: K = from_fragment(Fragment::Str(key))
                        .map_err(|e| <D::Error as de::Error>::custom(e))?;
                    let value: V =
                        from_fragment(value).map_err(|e| <D::Error as de::Error>::custom(e))?;
                    map.insert(key, value);
                }
                Ok(map)
            }
            other => type_error("a map", &other),
        }
    }
}

macro_rules! deserialize_tuple {
    ($(($($name:ident),+ ; $len:expr))*) => {$(
        impl<'de, $($name: for<'a> Deserialize<'a>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
                match deserializer.deserialize_fragment()? {
                    Fragment::Seq(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($(
                            from_fragment::<$name>(it.next().expect("length checked"))
                                .map_err(|e| <De::Error as de::Error>::custom(e))?,
                        )+))
                    }
                    Fragment::Seq(items) => Err(<De::Error as de::Error>::custom(format!(
                        "invalid length {}, expected a tuple of {}",
                        items.len(),
                        $len
                    ))),
                    other => type_error("a sequence", &other),
                }
            }
        }
    )*};
}
deserialize_tuple! {
    (A; 1)
    (A, B; 2)
    (A, B, C; 3)
    (A, B, C, D; 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_fragment(&true).unwrap(), Fragment::Bool(true));
        assert_eq!(to_fragment(&42i64).unwrap(), Fragment::I64(42));
        assert_eq!(to_fragment(&"hi").unwrap(), Fragment::Str("hi".into()));
        let v: i64 = from_fragment(Fragment::I64(7)).unwrap();
        assert_eq!(v, 7);
        let s: String = from_fragment(Fragment::Str("x".into())).unwrap();
        assert_eq!(s, "x");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1i64, 2, 3];
        let frag = to_fragment(&v).unwrap();
        let back: Vec<i64> = from_fragment(frag).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1i64);
        let frag = to_fragment(&m).unwrap();
        let back: BTreeMap<String, i64> = from_fragment(frag).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_null_round_trip() {
        assert_eq!(to_fragment(&Option::<i64>::None).unwrap(), Fragment::Null);
        let v: Option<i64> = from_fragment(Fragment::Null).unwrap();
        assert_eq!(v, None);
        let v: Option<i64> = from_fragment(Fragment::I64(3)).unwrap();
        assert_eq!(v, Some(3));
    }

    #[test]
    fn type_mismatch_reports_kinds() {
        let err = from_fragment::<String>(Fragment::I64(3)).unwrap_err();
        assert!(err.to_string().contains("expected a string"));
        let err = from_fragment::<Vec<i64>>(Fragment::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("expected a sequence"));
    }

    #[test]
    fn arrays_check_length() {
        let ok: [i64; 3] = from_fragment(to_fragment(&[1i64, 2, 3]).unwrap()).unwrap();
        assert_eq!(ok, [1, 2, 3]);
        assert!(from_fragment::<[i64; 4]>(to_fragment(&[1i64, 2, 3]).unwrap()).is_err());
    }
}
