//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock loop: per benchmark it warms up once, runs `sample_size`
//! timed batches, and prints the median batch time. No statistics, plots,
//! or baselines; good enough to keep `cargo bench` meaningful offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Upper bound on timed iterations per sample, to keep runs fast.
const MAX_ITERS_PER_SAMPLE: u64 = 1000;
/// Target wall-clock spent per sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// Identifies one benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Declared input volume, echoed as a rate in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Runs one benchmark body repeatedly and records timings.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, auto-scaling iterations per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: how many iterations fit the sample budget?
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos())
            .clamp(1, MAX_ITERS_PER_SAMPLE as u128) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

fn report(name: &str, median: Duration, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if median > Duration::ZERO => {
            let mib_s = bytes as f64 / median.as_secs_f64() / (1024.0 * 1024.0);
            format!("  ({mib_s:.1} MiB/s)")
        }
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            let elem_s = n as f64 / median.as_secs_f64();
            format!("  ({elem_s:.0} elem/s)")
        }
        _ => String::new(),
    };
    println!("{name:<50} {median:>12.2?}{rate}");
}

/// A named set of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.criterion.sample_size,
        };
        routine(&mut bencher, input);
        let median = bencher.median();
        report(&format!("{}/{}", self.name, id), median, self.throughput);
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.criterion.sample_size,
        };
        routine(&mut bencher);
        let median = bencher.median();
        report(&format!("{}/{}", self.name, id), median, self.throughput);
    }

    pub fn finish(self) {}
}

/// Entry point: owns global settings, hands out groups.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (each sample is many iterations).
    pub fn sample_size(mut self, samples: usize) -> Self {
        assert!(samples > 0, "sample_size must be positive");
        self.sample_size = samples;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        let median = bencher.median();
        report(name, median, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Upstream calls this after `criterion_main!` finishes; no-op here.
    pub fn final_summary(&mut self) {}
}

/// Re-export for code importing criterion's black_box; std's is identical.
pub use std::hint::black_box;

/// Declares a benchmark group function, optionally with custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_addition(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        let mut group = c.benchmark_group("grouped");
        group.throughput(Throughput::Bytes(8));
        group.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, n| {
            b.iter(|| black_box(*n) * 3)
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = bench_addition
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
