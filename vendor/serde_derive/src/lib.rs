//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! fragment data model of the vendored `serde` crate, by parsing the item's
//! token stream directly (no `syn`/`quote` available offline) and emitting
//! impls as source text.
//!
//! Supported shapes — exactly what this workspace uses:
//! - named-field structs, with field attrs `rename`, `default`,
//!   `skip_serializing_if`, `flatten`
//! - single-field tuple structs with `#[serde(transparent)]`
//! - container attrs `into = "T"` / `try_from = "T"` (delegating to a wire
//!   representation type), `rename_all`, `tag`
//! - enums of unit variants (serialized as name strings, honoring
//!   `rename` / `rename_all`)
//! - enums of newtype variants with `#[serde(tag = "...")]` (internally
//!   tagged maps)
//!
//! Generics are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Parsed model
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Clone)]
struct SerdeOpts {
    rename: Option<String>,
    rename_all: Option<String>,
    transparent: bool,
    tag: Option<String>,
    into: Option<String>,
    try_from: Option<String>,
    default: bool,
    skip_serializing_if: Option<String>,
    flatten: bool,
}

impl SerdeOpts {
    fn merge_pairs(&mut self, pairs: Vec<(String, Option<String>)>) {
        for (key, value) in pairs {
            match key.as_str() {
                "rename" => self.rename = value,
                "rename_all" => self.rename_all = value,
                "transparent" => self.transparent = true,
                "tag" => self.tag = value,
                "into" => self.into = value,
                "try_from" => self.try_from = value,
                "default" => self.default = true,
                "skip_serializing_if" => self.skip_serializing_if = value,
                "flatten" => self.flatten = true,
                // `deny_unknown_fields` and anything else we can safely
                // ignore: unknown keys were already ignored by the lenient
                // deserializer.
                _ => {}
            }
        }
    }
}

#[derive(Debug)]
struct Field {
    opts: SerdeOpts,
    name: String,
    ty: String,
}

#[derive(Debug)]
struct Variant {
    opts: SerdeOpts,
    name: String,
    /// Type inside a newtype variant, when present.
    newtype: Option<String>,
}

#[derive(Debug)]
enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<String>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    opts: SerdeOpts,
    name: String,
    data: Data,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn strip_quotes(literal: &str) -> String {
    let trimmed = literal.trim();
    if trimmed.len() >= 2 && trimmed.starts_with('"') && trimmed.ends_with('"') {
        trimmed[1..trimmed.len() - 1].to_string()
    } else {
        trimmed.to_string()
    }
}

/// Parses the contents of one `#[...]` attribute group; returns serde
/// key/value pairs when it is a `serde` attribute, `None` otherwise.
fn parse_attribute(group: TokenStream) -> Option<Vec<(String, Option<String>)>> {
    let mut iter = group.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(ident)) if ident.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return Some(Vec::new()),
    };
    let mut pairs = Vec::new();
    let mut tokens = inner.into_iter().peekable();
    while let Some(token) = tokens.next() {
        let key = match token {
            TokenTree::Ident(ident) => ident.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => continue,
            other => panic!("unexpected token in #[serde(...)]: {other}"),
        };
        let mut value = None;
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '=' {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Literal(lit)) => value = Some(strip_quotes(&lit.to_string())),
                    other => panic!("expected string after `{key} =`, got {other:?}"),
                }
            }
        }
        pairs.push((key, value));
    }
    Some(pairs)
}

/// Collects leading attributes from `tokens`, merging serde ones into `opts`.
fn take_attributes(
    tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
    opts: &mut SerdeOpts,
) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        if let Some(pairs) = parse_attribute(g.stream()) {
                            opts.merge_pairs(pairs);
                        }
                    }
                    other => panic!("expected [...] after #, got {other:?}"),
                }
            }
            _ => return,
        }
    }
}

/// Skips a `pub` / `pub(...)` visibility prefix.
fn skip_visibility(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(ident)) = tokens.peek() {
        if ident.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

/// Renders type tokens back to source text, splitting on top-level commas.
fn split_types(stream: TokenStream) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut angle_depth = 0i32;
    for token in stream {
        match &token {
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !current.trim().is_empty() {
                    out.push(current.trim().to_string());
                }
                current = String::new();
            }
            other => {
                if let TokenTree::Punct(p) = other {
                    match p.as_char() {
                        '<' => angle_depth += 1,
                        '>' => angle_depth -= 1,
                        _ => {}
                    }
                }
                if !current.is_empty() {
                    current.push(' ');
                }
                current.push_str(&other.to_string());
            }
        }
    }
    if !current.trim().is_empty() {
        out.push(current.trim().to_string());
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        let mut opts = SerdeOpts::default();
        take_attributes(&mut tokens, &mut opts);
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        let mut ty = String::new();
        let mut angle_depth = 0i32;
        for token in tokens.by_ref() {
            match &token {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                other => {
                    if let TokenTree::Punct(p) = other {
                        match p.as_char() {
                            '<' => angle_depth += 1,
                            '>' => angle_depth -= 1,
                            _ => {}
                        }
                    }
                    if !ty.is_empty() {
                        ty.push(' ');
                    }
                    ty.push_str(&other.to_string());
                }
            }
        }
        fields.push(Field { opts, name, ty });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        let mut opts = SerdeOpts::default();
        take_attributes(&mut tokens, &mut opts);
        let name = match tokens.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let mut newtype = None;
        if let Some(TokenTree::Group(g)) = tokens.peek() {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    let types = split_types(g.stream());
                    if types.len() != 1 {
                        panic!("variant `{name}`: only newtype variants are supported");
                    }
                    newtype = Some(types.into_iter().next().expect("one type"));
                    tokens.next();
                }
                Delimiter::Brace => panic!("variant `{name}`: struct variants are unsupported"),
                _ => {}
            }
        }
        // Consume a trailing comma, if any.
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == ',' {
                tokens.next();
            }
        }
        variants.push(Variant {
            opts,
            name,
            newtype,
        });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    let mut opts = SerdeOpts::default();
    take_attributes(&mut tokens, &mut opts);
    skip_visibility(&mut tokens);
    // There may be further attributes (e.g. between doc comments and vis in
    // odd orders) — loop until we hit the struct/enum keyword.
    let keyword = loop {
        match tokens.next() {
            Some(TokenTree::Ident(ident)) => {
                let word = ident.to_string();
                if word == "struct" || word == "enum" {
                    break word;
                }
                if word == "union" {
                    panic!("derive(Serialize/Deserialize): unions are unsupported");
                }
                // e.g. `pub` handled above; anything else (unsafe, etc.) skip.
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    if let Some(pairs) = parse_attribute(g.stream()) {
                        opts.merge_pairs(pairs);
                    }
                }
                other => panic!("expected [...] after #, got {other:?}"),
            },
            Some(_) => {}
            None => panic!("derive input without struct/enum keyword"),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("derive(Serialize/Deserialize): generic types are unsupported by the vendored serde_derive");
        }
    }
    let data = if keyword == "struct" {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(split_types(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::TupleStruct(Vec::new()),
            other => panic!("unexpected struct body: {other:?}"),
        }
    } else {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("unexpected enum body: {other:?}"),
        }
    };
    Item { opts, name, data }
}

// ---------------------------------------------------------------------------
// Shared codegen helpers
// ---------------------------------------------------------------------------

fn apply_rename_all(name: &str, rule: &str) -> String {
    match rule {
        "lowercase" => name.to_lowercase(),
        "UPPERCASE" => name.to_uppercase(),
        "snake_case" => {
            let mut out = String::new();
            for (i, c) in name.chars().enumerate() {
                if c.is_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.extend(c.to_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
        "SCREAMING_SNAKE_CASE" => apply_rename_all(name, "snake_case").to_uppercase(),
        "kebab-case" => apply_rename_all(name, "snake_case").replace('_', "-"),
        other => panic!("unsupported rename_all rule `{other}`"),
    }
}

fn variant_wire_name(variant: &Variant, container: &SerdeOpts) -> String {
    if let Some(rename) = &variant.opts.rename {
        return rename.clone();
    }
    if let Some(rule) = &container.rename_all {
        return apply_rename_all(&variant.name, rule);
    }
    variant.name.clone()
}

fn field_wire_name(field: &Field) -> String {
    field
        .opts
        .rename
        .clone()
        .unwrap_or_else(|| field.name.clone())
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(target) = &item.opts.into {
        format!(
            "let __repr: {target} = <{target} as ::core::convert::From<{name}>>::from(::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::serialize(&__repr, __serializer)"
        )
    } else {
        match &item.data {
            Data::TupleStruct(types) => {
                // Newtype structs serialize as their inner value, matching
                // real serde (with or without #[serde(transparent)]).
                assert!(
                    types.len() == 1,
                    "`{name}`: only single-field tuple structs are supported"
                );
                "::serde::Serialize::serialize(&self.0, __serializer)".to_string()
            }
            Data::NamedStruct(fields) if item.opts.transparent => {
                assert!(
                    fields.len() == 1,
                    "`{name}`: transparent needs exactly one field"
                );
                format!(
                    "::serde::Serialize::serialize(&self.{}, __serializer)",
                    fields[0].name
                )
            }
            Data::NamedStruct(fields) => {
                let mut out = String::from(
                    "let mut __entries: ::std::vec::Vec<(::std::string::String, ::serde::Fragment)> = ::std::vec::Vec::new();\n",
                );
                for field in fields {
                    let push = if field.opts.flatten {
                        format!(
                            "match ::serde::to_fragment(&self.{f}).map_err(<__S::Error as ::serde::ser::Error>::custom)? {{\n\
                                 ::serde::Fragment::Map(__m) => __entries.extend(__m),\n\
                                 _ => return ::core::result::Result::Err(<__S::Error as ::serde::ser::Error>::custom(\"#[serde(flatten)] field `{f}` did not serialize to a map\")),\n\
                             }}\n",
                            f = field.name
                        )
                    } else {
                        format!(
                            "__entries.push((::std::string::String::from(\"{key}\"), ::serde::to_fragment(&self.{f}).map_err(<__S::Error as ::serde::ser::Error>::custom)?));\n",
                            key = field_wire_name(field),
                            f = field.name
                        )
                    };
                    if let Some(path) = &field.opts.skip_serializing_if {
                        out.push_str(&format!("if !{path}(&self.{}) {{\n{push}}}\n", field.name));
                    } else {
                        out.push_str(&push);
                    }
                }
                out.push_str("__serializer.serialize_fragment(::serde::Fragment::Map(__entries))");
                out
            }
            Data::Enum(variants) => {
                let all_unit = variants.iter().all(|v| v.newtype.is_none());
                if all_unit {
                    let arms: String = variants
                        .iter()
                        .map(|v| {
                            format!(
                                "{name}::{} => \"{}\",\n",
                                v.name,
                                variant_wire_name(v, &item.opts)
                            )
                        })
                        .collect();
                    format!("__serializer.serialize_str(match self {{\n{arms}}})")
                } else {
                    let tag = item.opts.tag.as_ref().unwrap_or_else(|| {
                        panic!("`{name}`: data-carrying enums need #[serde(tag = ...)]")
                    });
                    let arms: String = variants
                        .iter()
                        .map(|v| {
                            assert!(v.newtype.is_some(), "`{name}`: mixed enums unsupported");
                            format!(
                                "{name}::{v} (__inner) => {{\n\
                                     match ::serde::to_fragment(__inner).map_err(<__S::Error as ::serde::ser::Error>::custom)? {{\n\
                                         ::serde::Fragment::Map(mut __m) => {{\n\
                                             __m.insert(0, (::std::string::String::from(\"{tag}\"), ::serde::Fragment::Str(::std::string::String::from(\"{wire}\"))));\n\
                                             __serializer.serialize_fragment(::serde::Fragment::Map(__m))\n\
                                         }}\n\
                                         _ => ::core::result::Result::Err(<__S::Error as ::serde::ser::Error>::custom(\"internally tagged variant `{wire}` must serialize to a map\")),\n\
                                     }}\n\
                                 }}\n",
                                v = v.name,
                                wire = variant_wire_name(v, &item.opts)
                            )
                        })
                        .collect();
                    format!("match self {{\n{arms}}}")
                }
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

const CUSTOM: &str = "<__D::Error as ::serde::de::Error>::custom";

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(source) = &item.opts.try_from {
        format!(
            "let __repr: {source} = ::serde::Deserialize::deserialize(__deserializer)?;\n\
             <{name} as ::core::convert::TryFrom<{source}>>::try_from(__repr).map_err(|__e| {CUSTOM}(__e))"
        )
    } else {
        match &item.data {
            Data::TupleStruct(types) => {
                assert!(
                    types.len() == 1,
                    "`{name}`: only single-field tuple structs are supported"
                );
                format!("::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(__deserializer)?))")
            }
            Data::NamedStruct(fields) if item.opts.transparent => {
                assert!(
                    fields.len() == 1,
                    "`{name}`: transparent needs exactly one field"
                );
                format!(
                    "::core::result::Result::Ok({name} {{ {f}: ::serde::Deserialize::deserialize(__deserializer)? }})",
                    f = fields[0].name
                )
            }
            Data::NamedStruct(fields) => {
                let mut out = format!(
                    "let mut __map = match __deserializer.deserialize_fragment()? {{\n\
                         ::serde::Fragment::Map(__m) => __m,\n\
                         __other => return ::core::result::Result::Err({CUSTOM}(::std::format!(\"invalid type: expected a map for struct `{name}`, found {{}}\", __other.kind()))),\n\
                     }};\n"
                );
                // Named (non-flatten) fields consume their keys first; a
                // flatten field then absorbs whatever remains, mirroring
                // real serde.
                for field in fields.iter().filter(|f| !f.opts.flatten) {
                    let key = field_wire_name(field);
                    let missing = if field.opts.default {
                        "::core::default::Default::default()".to_string()
                    } else {
                        format!(
                            "return ::core::result::Result::Err({CUSTOM}(\"missing field `{key}` in `{name}`\"))"
                        )
                    };
                    out.push_str(&format!(
                        "let __field_{f}: {ty} = match ::serde::fragment_take(&mut __map, \"{key}\") {{\n\
                             ::core::option::Option::Some(__f) => ::serde::from_fragment(__f).map_err(|__e| {CUSTOM}(::std::format!(\"field `{key}`: {{}}\", __e)))?,\n\
                             ::core::option::Option::None => {missing},\n\
                         }};\n",
                        f = field.name,
                        ty = field.ty
                    ));
                }
                for field in fields.iter().filter(|f| f.opts.flatten) {
                    out.push_str(&format!(
                        "let __field_{f}: {ty} = ::serde::from_fragment(::serde::Fragment::Map(::core::mem::take(&mut __map))).map_err(|__e| {CUSTOM}(::std::format!(\"flattened field `{f}`: {{}}\", __e)))?;\n",
                        f = field.name,
                        ty = field.ty
                    ));
                }
                let inits: String = fields
                    .iter()
                    .map(|f| format!("{f}: __field_{f}, ", f = f.name))
                    .collect();
                out.push_str(&format!("::core::result::Result::Ok({name} {{ {inits}}})"));
                out
            }
            Data::Enum(variants) => {
                let all_unit = variants.iter().all(|v| v.newtype.is_none());
                if all_unit {
                    let arms: String = variants
                        .iter()
                        .map(|v| {
                            format!(
                                "\"{}\" => ::core::result::Result::Ok({name}::{}),\n",
                                variant_wire_name(v, &item.opts),
                                v.name
                            )
                        })
                        .collect();
                    let expected: Vec<String> = variants
                        .iter()
                        .map(|v| variant_wire_name(v, &item.opts))
                        .collect();
                    let expected = expected.join(", ");
                    format!(
                        "let __s = match __deserializer.deserialize_fragment()? {{\n\
                             ::serde::Fragment::Str(__s) => __s,\n\
                             __other => return ::core::result::Result::Err({CUSTOM}(::std::format!(\"invalid type: expected a string for enum `{name}`, found {{}}\", __other.kind()))),\n\
                         }};\n\
                         match __s.as_str() {{\n\
                             {arms}\
                             __other => ::core::result::Result::Err({CUSTOM}(::std::format!(\"unknown variant `{{}}` for `{name}`, expected one of: {expected}\", __other))),\n\
                         }}"
                    )
                } else {
                    let tag = item.opts.tag.as_ref().unwrap_or_else(|| {
                        panic!("`{name}`: data-carrying enums need #[serde(tag = ...)]")
                    });
                    let arms: String = variants
                        .iter()
                        .map(|v| {
                            format!(
                                "\"{wire}\" => ::core::result::Result::Ok({name}::{v}(::serde::from_fragment(::serde::Fragment::Map(__map)).map_err(|__e| {CUSTOM}(::std::format!(\"variant `{wire}`: {{}}\", __e)))?)),\n",
                                v = v.name,
                                wire = variant_wire_name(v, &item.opts)
                            )
                        })
                        .collect();
                    format!(
                        "let mut __map = match __deserializer.deserialize_fragment()? {{\n\
                             ::serde::Fragment::Map(__m) => __m,\n\
                             __other => return ::core::result::Result::Err({CUSTOM}(::std::format!(\"invalid type: expected a map for enum `{name}`, found {{}}\", __other.kind()))),\n\
                         }};\n\
                         let __tag = match ::serde::fragment_take(&mut __map, \"{tag}\") {{\n\
                             ::core::option::Option::Some(::serde::Fragment::Str(__s)) => __s,\n\
                             ::core::option::Option::Some(_) => return ::core::result::Result::Err({CUSTOM}(\"tag `{tag}` must be a string\")),\n\
                             ::core::option::Option::None => return ::core::result::Result::Err({CUSTOM}(\"missing tag `{tag}` for enum `{name}`\")),\n\
                         }};\n\
                         match __tag.as_str() {{\n\
                             {arms}\
                             __other => ::core::result::Result::Err({CUSTOM}(::std::format!(\"unknown `{tag}` value `{{}}` for `{name}`\", __other))),\n\
                         }}"
                    )
                }
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) -> ::core::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Derives `serde::Serialize` for the supported item shapes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for the supported item shapes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}
