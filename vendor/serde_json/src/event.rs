//! Zero-copy pull-event JSON reader.
//!
//! [`EventReader`] walks a JSON document in a single pass, yielding
//! borrowed [`Event`]s instead of materializing a [`Value`] tree. Keys
//! and strings come back as `Cow::Borrowed` slices of the input
//! whenever they contain no escape sequences, so a consumer that mostly
//! interns or compares strings never allocates for them.
//!
//! The grammar, recursion limit, and every error message/position are
//! kept byte-for-byte identical to [`parse_value`](crate::parse_value):
//! a document either yields the same value through both paths or fails
//! with the same `Error` through both paths.

use crate::{Error, Map, Number, NumberRepr, Result, Value};
use std::borrow::Cow;

/// Mirrors the recursion limit of the tree parser.
const MAX_DEPTH: usize = 128;

/// One parse event. Strings borrow from the input unless they contained
/// escape sequences.
#[derive(Debug, Clone, PartialEq)]
pub enum Event<'a> {
    /// JSON `null`.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// A number, already classified i64 → u64 → f64.
    Number(Number),
    /// A string value.
    String(Cow<'a, str>),
    /// `[` — an array begins; elements follow until [`Event::EndArray`].
    StartArray,
    /// `]` — the innermost array is complete.
    EndArray,
    /// `{` — an object begins; key/value pairs follow until
    /// [`Event::EndObject`].
    StartObject,
    /// An object key; the member's value event(s) come next.
    Key(Cow<'a, str>),
    /// `}` — the innermost object is complete.
    EndObject,
}

/// What the reader expects next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// A value (the document root, after `[`, `,` in an array, or `:`).
    Value,
    /// The first element of a just-opened array, or `]`.
    ArrayFirst,
    /// `,` or `]` after an array element.
    ArrayNext,
    /// The first key of a just-opened object, or `}`.
    ObjectFirst,
    /// A key (after `,` in an object).
    ObjectKey,
    /// `:` and then the member value (after a key).
    ObjectColon,
    /// `,` or `}` after an object member.
    ObjectNext,
    /// The root value is complete; only trailing whitespace may remain.
    Finished,
}

/// Which container a stack entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Frame {
    Array,
    Object,
}

/// A single-pass pull parser over `&str`, yielding borrowed [`Event`]s.
///
/// ```
/// use serde_json::{Event, EventReader};
/// use std::borrow::Cow;
///
/// let mut reader = EventReader::new(r#"{"name": "chip"}"#);
/// assert_eq!(reader.next_event().unwrap(), Some(Event::StartObject));
/// let Some(Event::Key(Cow::Borrowed(key))) = reader.next_event().unwrap() else {
///     panic!("expected a borrowed key");
/// };
/// assert_eq!(key, "name");
/// ```
pub struct EventReader<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    stack: Vec<Frame>,
    state: State,
}

impl<'a> EventReader<'a> {
    /// Starts reading `text` from the beginning.
    pub fn new(text: &'a str) -> EventReader<'a> {
        EventReader {
            text,
            bytes: text.as_bytes(),
            pos: 0,
            stack: Vec::new(),
            state: State::Value,
        }
    }

    /// The next event, or `Ok(None)` exactly once when the document is
    /// complete (trailing content past the root value is rejected here,
    /// matching the tree parser).
    #[inline]
    pub fn next_event(&mut self) -> Result<Option<Event<'a>>> {
        match self.state {
            State::Value => {
                self.skip_whitespace();
                self.value().map(Some)
            }
            State::ArrayFirst => {
                self.skip_whitespace();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return self.close(Frame::Array).map(Some);
                }
                self.skip_whitespace();
                self.value().map(Some)
            }
            State::ArrayNext => {
                self.skip_whitespace();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                        self.skip_whitespace();
                        self.value().map(Some)
                    }
                    Some(b']') => {
                        self.pos += 1;
                        self.close(Frame::Array).map(Some)
                    }
                    Some(_) => Err(self.error("expected `,` or `]`")),
                    None => Err(self.error("EOF while parsing a list")),
                }
            }
            State::ObjectFirst => {
                self.skip_whitespace();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return self.close(Frame::Object).map(Some);
                }
                self.key().map(Some)
            }
            State::ObjectKey => {
                self.skip_whitespace();
                self.key().map(Some)
            }
            State::ObjectColon => {
                self.skip_whitespace();
                self.expect(b':')?;
                self.skip_whitespace();
                self.value().map(Some)
            }
            State::ObjectNext => {
                self.skip_whitespace();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                        self.state = State::ObjectKey;
                        self.next_event()
                    }
                    Some(b'}') => {
                        self.pos += 1;
                        self.close(Frame::Object).map(Some)
                    }
                    Some(_) => Err(self.error("expected `,` or `}`")),
                    None => Err(self.error("EOF while parsing an object")),
                }
            }
            State::Finished => {
                self.skip_whitespace();
                if self.pos < self.bytes.len() {
                    return Err(self.error("trailing characters"));
                }
                Ok(None)
            }
        }
    }

    /// Consumes exactly one complete value (scalar or whole container)
    /// from a position where a value is expected.
    pub fn skip_value(&mut self) -> Result<()> {
        let mut depth = 0usize;
        loop {
            match self.next_event()? {
                Some(Event::StartArray | Event::StartObject) => depth += 1,
                Some(Event::EndArray | Event::EndObject) => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                Some(Event::Key(_)) => {}
                Some(_) if depth == 0 => return Ok(()),
                Some(_) => {}
                None => return Err(self.error("EOF while parsing a value")),
            }
        }
    }

    /// Reads one complete value into an owned [`Value`] tree, from a
    /// position where a value is expected. Duplicate object keys keep
    /// the last occurrence, matching the tree parser.
    pub fn read_value(&mut self) -> Result<Value> {
        let event = self
            .next_event()?
            .ok_or_else(|| self.error("EOF while parsing a value"))?;
        self.value_from(event)
    }

    fn value_from(&mut self, event: Event<'a>) -> Result<Value> {
        Ok(match event {
            Event::Null => Value::Null,
            Event::Bool(b) => Value::Bool(b),
            Event::Number(n) => Value::Number(n),
            Event::String(s) => Value::String(s.into_owned()),
            Event::StartArray => {
                let mut items = Vec::new();
                loop {
                    match self.require_event()? {
                        Event::EndArray => break,
                        event => items.push(self.value_from(event)?),
                    }
                }
                Value::Array(items)
            }
            Event::StartObject => {
                let mut map = Map::new();
                loop {
                    match self.require_event()? {
                        Event::EndObject => break,
                        Event::Key(key) => {
                            let value = self.read_value()?;
                            map.insert(key.into_owned(), value);
                        }
                        _ => return Err(self.error("key must be a string")),
                    }
                }
                Value::Object(map)
            }
            Event::Key(_) | Event::EndArray | Event::EndObject => {
                return Err(self.error("expected value"))
            }
        })
    }

    fn require_event(&mut self) -> Result<Event<'a>> {
        self.next_event()?
            .ok_or_else(|| self.error("EOF while parsing a value"))
    }

    // ---- scanning helpers (identical behavior to the tree parser) ------

    fn error(&self, message: &str) -> Error {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        Error::syntax(message, line, column)
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    #[inline]
    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Advances past the run of bytes satisfying `keep`, starting at the
    /// current position. A straight slice scan — no per-byte bounds
    /// check — so the string/number hot loops vectorize.
    #[inline]
    fn scan_while(&mut self, keep: impl Fn(u8) -> bool) {
        let rest = &self.bytes[self.pos..];
        let run = rest.iter().position(|&b| !keep(b)).unwrap_or(rest.len());
        self.pos += run;
    }

    /// The input slice between byte positions `start..end`.
    ///
    /// Sound without re-validation: the input arrived as `&str`, and
    /// every scanner stops only at ASCII delimiters (quotes, escapes,
    /// digits' neighbours), so `start`/`end` always sit on char
    /// boundaries — `&str` slicing checks exactly that.
    #[inline]
    fn slice(&self, start: usize, end: usize) -> &'a str {
        &self.text[start..end]
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    /// The state to enter after a value completes at the current depth.
    fn after_value(&mut self) {
        self.state = match self.stack.last() {
            None => State::Finished,
            Some(Frame::Array) => State::ArrayNext,
            Some(Frame::Object) => State::ObjectNext,
        };
    }

    /// Pops `frame` and emits the matching end event.
    fn close(&mut self, frame: Frame) -> Result<Event<'a>> {
        debug_assert_eq!(self.stack.last(), Some(&frame));
        self.stack.pop();
        self.after_value();
        Ok(match frame {
            Frame::Array => Event::EndArray,
            Frame::Object => Event::EndObject,
        })
    }

    /// Dispatches one value whose first byte is at the current position.
    fn value(&mut self) -> Result<Event<'a>> {
        if self.stack.len() > MAX_DEPTH {
            return Err(self.error("recursion limit exceeded"));
        }
        let event = match self.peek() {
            None => return Err(self.error("EOF while parsing a value")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Event::Null
                } else {
                    return Err(self.error("expected ident `null`"));
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Event::Bool(true)
                } else {
                    return Err(self.error("expected ident `true`"));
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Event::Bool(false)
                } else {
                    return Err(self.error("expected ident `false`"));
                }
            }
            Some(b'"') => Event::String(self.string()?),
            Some(b'[') => {
                self.pos += 1;
                self.stack.push(Frame::Array);
                self.state = State::ArrayFirst;
                return Ok(Event::StartArray);
            }
            Some(b'{') => {
                self.pos += 1;
                self.stack.push(Frame::Object);
                self.state = State::ObjectFirst;
                return Ok(Event::StartObject);
            }
            Some(b'-' | b'0'..=b'9') => Event::Number(self.number()?),
            Some(_) => return Err(self.error("expected value")),
        };
        self.after_value();
        Ok(event)
    }

    /// Reads an object key (a string) and arms the colon/value state.
    fn key(&mut self) -> Result<Event<'a>> {
        if self.peek() != Some(b'"') {
            return Err(self.error("key must be a string"));
        }
        let key = self.string()?;
        self.state = State::ObjectColon;
        Ok(Event::Key(key))
    }

    /// Reads a string, borrowing when it contains no escapes.
    fn string(&mut self) -> Result<Cow<'a, str>> {
        self.expect(b'"')?;
        let start = self.pos;
        self.scan_while(|b| b != b'"' && b != b'\\' && b >= 0x20);
        if self.peek() == Some(b'"') {
            // Escape-free: hand back a slice of the input.
            let chunk = self.slice(start, self.pos);
            self.pos += 1;
            return Ok(Cow::Borrowed(chunk));
        }
        // Escapes (or an error) ahead: rewind past the opening quote and
        // run the owned decoder, which reproduces the tree parser's
        // behavior exactly.
        self.pos = start;
        self.string_owned().map(Cow::Owned)
    }

    /// The tree parser's string decoder, building an owned `String`.
    /// Entered with the opening quote already consumed.
    fn string_owned(&mut self) -> Result<String> {
        let mut out = String::new();
        loop {
            let start = self.pos;
            self.scan_while(|b| b != b'"' && b != b'\\' && b >= 0x20);
            if self.pos > start {
                out.push_str(self.slice(start, self.pos));
            }
            match self.peek() {
                None => return Err(self.error("EOF while parsing a string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("EOF in escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require a low surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(self.error("unexpected end of hex escape"));
                                }
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.error("lone leading surrogate"));
                                }
                                let combined =
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| self.error("lone trailing surrogate"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                }
                Some(_) => return Err(self.error("control character in string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut acc = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.error("EOF in unicode escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit"))?;
            acc = acc * 16 + digit;
            self.pos += 1;
        }
        Ok(acc)
    }

    /// The tree parser's number scanner, classifying i64 → u64 → f64.
    fn number(&mut self) -> Result<Number> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.error("leading zeros are not allowed"));
                }
            }
            Some(b'1'..=b'9') => self.scan_while(|b| b.is_ascii_digit()),
            _ => return Err(self.error("expected digit")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digit after decimal point"));
            }
            self.scan_while(|b| b.is_ascii_digit());
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digit in exponent"));
            }
            self.scan_while(|b| b.is_ascii_digit());
        }
        let text = self.slice(start, self.pos);
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Number(NumberRepr::I64(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Number(NumberRepr::U64(u)));
            }
        }
        let f: f64 = text
            .parse()
            .map_err(|_| self.error("number out of range"))?;
        if f.is_finite() {
            Ok(Number(NumberRepr::F64(f)))
        } else {
            Err(self.error("number out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_value;

    /// Drains a reader into events, panicking on error.
    fn events(text: &str) -> Vec<Event<'_>> {
        let mut reader = EventReader::new(text);
        let mut out = Vec::new();
        while let Some(event) = reader.next_event().unwrap() {
            out.push(event);
        }
        out
    }

    #[test]
    fn scalars_and_containers_stream_in_order() {
        let got = events(r#"{"a": [1, true, null], "b": "x"}"#);
        assert_eq!(got.len(), 10);
        assert_eq!(got[0], Event::StartObject);
        assert!(matches!(&got[1], Event::Key(k) if k == "a"));
        assert_eq!(got[2], Event::StartArray);
        assert!(matches!(&got[3], Event::Number(n) if n.as_i64() == Some(1)));
        assert_eq!(got[4], Event::Bool(true));
        assert_eq!(got[5], Event::Null);
        assert_eq!(got[6], Event::EndArray);
        assert!(matches!(&got[7], Event::Key(k) if k == "b"));
        assert!(matches!(&got[8], Event::String(s) if s == "x"));
        assert_eq!(got[9], Event::EndObject);
    }

    #[test]
    fn escape_free_strings_borrow_escaped_strings_own() {
        let text = r#"["plain", "with\nescape"]"#;
        let got = events(text);
        assert!(matches!(&got[1], Event::String(Cow::Borrowed(s)) if *s == "plain"));
        assert!(matches!(&got[2], Event::String(Cow::Owned(s)) if s == "with\nescape"));
    }

    #[test]
    fn read_value_matches_tree_parser() {
        for text in [
            "null",
            "[]",
            "{}",
            r#"{"a": {"b": [1, 2.5, -3]}, "a": "dup wins", "c": "\u00e9\ud83d\ude00"}"#
                .replace("\\u", "\\u")
                .as_str(),
            "  [1, [2, [3]], {\"k\": []}]  ",
        ] {
            let mut reader = EventReader::new(text);
            let streamed = reader.read_value().unwrap();
            assert_eq!(reader.next_event().unwrap(), None, "document consumed");
            assert_eq!(streamed, parse_value(text).unwrap(), "doc: {text}");
        }
    }

    #[test]
    fn skip_value_positions_past_one_member() {
        let mut reader = EventReader::new(r#"{"skip": {"deep": [1, {"x": 2}]}, "keep": 7}"#);
        assert_eq!(reader.next_event().unwrap(), Some(Event::StartObject));
        assert!(matches!(reader.next_event().unwrap(), Some(Event::Key(_))));
        reader.skip_value().unwrap();
        assert!(matches!(
            reader.next_event().unwrap(),
            Some(Event::Key(k)) if k == "keep"
        ));
        assert!(matches!(
            reader.next_event().unwrap(),
            Some(Event::Number(n)) if n.as_i64() == Some(7)
        ));
        assert_eq!(reader.next_event().unwrap(), Some(Event::EndObject));
        assert_eq!(reader.next_event().unwrap(), None);
    }

    /// Runs the reader to completion, returning the first error.
    fn stream_error(text: &str) -> Error {
        let mut reader = EventReader::new(text);
        loop {
            match reader.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("no error in {text:?}"),
                Err(e) => return e,
            }
        }
    }

    #[test]
    fn errors_match_the_tree_parser_exactly() {
        for text in [
            "",
            "  ",
            "nul",
            "truth",
            "falsy",
            "[1, 2",
            "[1 2]",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "{\"a\": 1 \"b\": 2}",
            "{1: 2}",
            "{\"a\": }",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"ctrl \u{0}\"",
            "\"\\ud800\"",
            "\"\\ud800\\u0041\"",
            "\"\\udc00x\"",
            "\"\\u12\"",
            "\"\\uzzzz\"",
            "01",
            "-",
            "1.",
            "1e",
            "1e+",
            "1e999",
            "@",
            "1 2",
            "[] []",
            "{\"a\": 1}}",
        ] {
            let tree = parse_value(text).expect_err(&format!("tree accepts {text:?}"));
            let stream = stream_error(text);
            assert_eq!(stream, tree, "doc: {text:?}");
        }
    }

    #[test]
    fn recursion_limit_matches_the_tree_parser() {
        // 128 nested arrays parse (the innermost scalar sits at depth
        // 128, the limit); 129 exceed it.
        let ok = format!("{}1{}", "[".repeat(128), "]".repeat(128));
        let mut reader = EventReader::new(&ok);
        assert!(reader.read_value().is_ok());
        assert!(parse_value(&ok).is_ok());

        let too_deep = format!("{}1{}", "[".repeat(129), "]".repeat(129));
        let tree = parse_value(&too_deep).unwrap_err();
        let stream = stream_error(&too_deep);
        assert_eq!(stream, tree);
        assert!(stream.to_string().contains("recursion limit exceeded"));
    }

    #[test]
    fn number_classification_matches() {
        for text in [
            "0",
            "-0",
            "9223372036854775807",
            "-9223372036854775808",
            "9223372036854775808",
            "18446744073709551615",
            "18446744073709551616",
            "1.5",
            "-2e10",
            "0.0",
        ] {
            let Value::Number(tree) = parse_value(text).unwrap() else {
                panic!("not a number: {text}");
            };
            let mut reader = EventReader::new(text);
            let Some(Event::Number(streamed)) = reader.next_event().unwrap() else {
                panic!("not a number event: {text}");
            };
            assert_eq!(streamed.is_i64(), tree.is_i64(), "{text}");
            assert_eq!(streamed.is_u64(), tree.is_u64(), "{text}");
            assert_eq!(streamed.as_f64(), tree.as_f64(), "{text}");
        }
    }
}
