//! Recursive-descent JSON parser producing [`Value`] trees.

use crate::{Error, Map, Number, NumberRepr, Result, Value};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// content rejected).
pub fn parse_value(text: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value(0)?;
    parser.skip_whitespace();
    if parser.pos < parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        Error::syntax(message, line, column)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(self.error("recursion limit exceeded"));
        }
        match self.peek() {
            None => Err(self.error("EOF while parsing a value")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.error("expected ident `null`"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.error("expected ident `true`"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.error("expected ident `false`"))
                }
            }
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("expected value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                Some(_) => return Err(self.error("expected `,` or `]`")),
                None => return Err(self.error("EOF while parsing a list")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            if self.peek() != Some(b'"') {
                return Err(self.error("key must be a string"));
            }
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            // Duplicate keys: last one wins, matching the real crate.
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                Some(_) => return Err(self.error("expected `,` or `}`")),
                None => return Err(self.error("EOF while parsing an object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy runs of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                None => return Err(self.error("EOF while parsing a string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("EOF in escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require a low surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(self.error("unexpected end of hex escape"));
                                }
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.error("lone leading surrogate"));
                                }
                                let combined =
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| self.error("lone trailing surrogate"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                }
                Some(_) => return Err(self.error("control character in string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut acc = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.error("EOF in unicode escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit"))?;
            acc = acc * 16 + digit;
            self.pos += 1;
        }
        Ok(acc)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a lone zero or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.error("leading zeros are not allowed"));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("expected digit")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number(NumberRepr::I64(i))));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number(NumberRepr::U64(u))));
            }
        }
        let f: f64 = text
            .parse()
            .map_err(|_| self.error("number out of range"))?;
        if f.is_finite() {
            Ok(Value::Number(Number(NumberRepr::F64(f))))
        } else {
            Err(self.error("number out of range"))
        }
    }
}
