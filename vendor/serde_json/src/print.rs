//! Compact and pretty JSON printers.
//!
//! Printing works on [`Fragment`] trees, which preserve the key order the
//! serializer emitted: derived structs keep declaration order, while
//! [`crate::Map`]-backed objects arrive already key-sorted. This matches the
//! real crate, where struct serialization never passes through `Value`.

use serde::Fragment;
use std::fmt::Write as _;

/// Renders a float like the real crate: always with a decimal point or
/// exponent so it round-trips as a float (`3.0`, not `3`).
pub(crate) fn format_f64(value: f64) -> String {
    debug_assert!(value.is_finite());
    if value == value.trunc() && value.abs() < 1e16 {
        format!("{value:.1}")
    } else {
        format!("{value}")
    }
}

fn push_escaped(out: &mut String, text: &str) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn to_string_fragment(fragment: &Fragment) -> String {
    let mut out = String::new();
    write_compact(&mut out, fragment);
    out
}

fn write_compact(out: &mut String, fragment: &Fragment) {
    match fragment {
        Fragment::Null => out.push_str("null"),
        Fragment::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Fragment::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Fragment::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Fragment::F64(v) if !v.is_finite() => out.push_str("null"),
        Fragment::F64(v) => out.push_str(&format_f64(*v)),
        Fragment::Str(s) => push_escaped(out, s),
        Fragment::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Fragment::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_escaped(out, key);
                out.push(':');
                write_compact(out, item);
            }
            out.push('}');
        }
    }
}

pub(crate) fn to_string_pretty_fragment(fragment: &Fragment) -> String {
    let mut out = String::new();
    write_pretty(&mut out, fragment, 0);
    out
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_pretty(out: &mut String, fragment: &Fragment, depth: usize) {
    match fragment {
        Fragment::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, depth + 1);
                write_pretty(out, item, depth + 1);
            }
            out.push('\n');
            push_indent(out, depth);
            out.push(']');
        }
        Fragment::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, depth + 1);
                push_escaped(out, key);
                out.push_str(": ");
                write_pretty(out, item, depth + 1);
            }
            out.push('\n');
            push_indent(out, depth);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}
