//! Offline stand-in for [`serde_json`].
//!
//! Same public surface as the subset this workspace uses — [`Value`],
//! [`Number`], [`Map`], [`json!`], `to_string{_pretty}`, `from_str`,
//! `to_value` / `from_value`, [`Error`] — implemented over the vendored
//! `serde` crate's [`Fragment`](serde::Fragment) data model.
//!
//! Behavioral notes kept compatible with the real crate:
//! - `Map` is ordered by key (the real crate's default BTreeMap backend), so
//!   serialized objects from maps are key-sorted while derived structs keep
//!   declaration order.
//! - Compact output uses `":"`/`","` with no spaces; pretty output uses
//!   two-space indentation.
//! - Floats always render with a decimal point (`3.0`, not `3`);
//!   non-finite floats serialize as `null`.

use serde::Fragment;
use std::collections::BTreeMap;
use std::fmt;

mod event;
mod parse;
mod print;

pub use event::{Event, EventReader};
pub use parse::parse_value;

// ---------------------------------------------------------------------------
// Error
// ---------------------------------------------------------------------------

/// Error produced while parsing or (de)serializing JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    /// 1-based line of a syntax error, 0 when not applicable.
    line: usize,
    /// 1-based column of a syntax error, 0 when not applicable.
    column: usize,
}

impl Error {
    pub(crate) fn syntax(message: impl Into<String>, line: usize, column: usize) -> Self {
        Error {
            message: message.into(),
            line,
            column,
        }
    }

    /// Line of a syntax error (1-based; 0 for data errors).
    pub fn line(&self) -> usize {
        self.line
    }

    /// Column of a syntax error (1-based; 0 for data errors).
    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} at line {} column {}",
                self.message, self.line, self.column
            )
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            message: msg.to_string(),
            line: 0,
            column: 0,
        }
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            message: msg.to_string(),
            line: 0,
            column: 0,
        }
    }
}

impl From<serde::FragmentError> for Error {
    fn from(e: serde::FragmentError) -> Self {
        Error {
            message: e.0,
            line: 0,
            column: 0,
        }
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Number
// ---------------------------------------------------------------------------

/// A JSON number: signed, unsigned, or floating-point.
#[derive(Debug, Clone, Copy)]
pub enum NumberRepr {
    I64(i64),
    U64(u64),
    F64(f64),
}

/// A JSON number, wrapping [`NumberRepr`].
#[derive(Debug, Clone, Copy)]
pub struct Number(pub(crate) NumberRepr);

impl Number {
    /// Builds a float number; `None` for non-finite input (like the real
    /// crate's `Number::from_f64`).
    pub fn from_f64(value: f64) -> Option<Number> {
        value.is_finite().then_some(Number(NumberRepr::F64(value)))
    }

    /// The value as `i64` when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            NumberRepr::I64(v) => Some(v),
            NumberRepr::U64(v) => i64::try_from(v).ok(),
            NumberRepr::F64(_) => None,
        }
    }

    /// The value as `u64` when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            NumberRepr::I64(v) => u64::try_from(v).ok(),
            NumberRepr::U64(v) => Some(v),
            NumberRepr::F64(_) => None,
        }
    }

    /// The value as `f64` (always possible, possibly lossy).
    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            NumberRepr::I64(v) => Some(v as f64),
            NumberRepr::U64(v) => Some(v as f64),
            NumberRepr::F64(v) => Some(v),
        }
    }

    /// True when the number is stored as a signed or in-range integer.
    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }

    /// True when the number is non-negative integral.
    pub fn is_u64(&self) -> bool {
        self.as_u64().is_some()
    }

    /// True when the number is stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.0, NumberRepr::F64(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.0, other.0) {
            (NumberRepr::F64(a), NumberRepr::F64(b)) => a.to_bits() == b.to_bits(),
            (NumberRepr::F64(_), _) | (_, NumberRepr::F64(_)) => false,
            _ => match (self.as_i64(), other.as_i64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_u64() == other.as_u64(),
            },
        }
    }
}

impl Eq for Number {}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            NumberRepr::I64(v) => write!(f, "{v}"),
            NumberRepr::U64(v) => write!(f, "{v}"),
            NumberRepr::F64(v) => f.write_str(&print::format_f64(v)),
        }
    }
}

macro_rules! number_from_signed {
    ($($ty:ty),*) => {$(
        impl From<$ty> for Number {
            fn from(v: $ty) -> Self { Number(NumberRepr::I64(v as i64)) }
        }
    )*};
}
number_from_signed!(i8, i16, i32, i64, isize);

macro_rules! number_from_unsigned {
    ($($ty:ty),*) => {$(
        impl From<$ty> for Number {
            fn from(v: $ty) -> Self {
                match i64::try_from(v as u64) {
                    Ok(i) => Number(NumberRepr::I64(i)),
                    Err(_) => Number(NumberRepr::U64(v as u64)),
                }
            }
        }
    )*};
}
number_from_unsigned!(u8, u16, u32, u64, usize);

// ---------------------------------------------------------------------------
// Map
// ---------------------------------------------------------------------------

/// A JSON object: string keys to values, ordered by key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Map<K = String, V = Value> {
    inner: BTreeMap<K, V>,
}

impl Map<String, Value> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map {
            inner: BTreeMap::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Inserts an entry, returning the previous value for the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.inner.insert(key, value)
    }

    /// Borrows the value for `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.inner.get(key)
    }

    /// Mutably borrows the value for `key`.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.inner.get_mut(key)
    }

    /// Removes an entry.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.inner.remove(key)
    }

    /// True when `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.inner.contains_key(key)
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.inner.iter()
    }

    /// Iterates entries mutably in key order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&String, &mut Value)> {
        self.inner.iter_mut()
    }

    /// Iterates keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.inner.keys()
    }

    /// Iterates values in key order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.inner.values()
    }
}

impl Extend<(String, Value)> for Map<String, Value> {
    fn extend<T: IntoIterator<Item = (String, Value)>>(&mut self, iter: T) {
        self.inner.extend(iter)
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Map {
            inner: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::collections::btree_map::IntoIter<String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

/// A parsed JSON document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Borrows the string payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `i64` when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The number as `u64` when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Borrows the array payload.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the object payload.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutably borrows the object payload.
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True for booleans.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// True for numbers.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// True for strings.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// True for arrays.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// True for objects.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Object member access (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.get(key)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&print::to_string_fragment(&value_to_fragment(self)))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<Number> for Value {
    fn from(v: Number) -> Self {
        Value::Number(v)
    }
}

impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Self {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::from(f64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        match Number::from_f64(v) {
            Some(n) => Value::Number(n),
            None => Value::Null,
        }
    }
}

macro_rules! value_from_int {
    ($($ty:ty),*) => {$(
        impl From<$ty> for Value {
            fn from(v: $ty) -> Self { Value::Number(Number::from(v)) }
        }
    )*};
}
value_from_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! value_partial_eq {
    ($($ty:ty => $conv:expr),* $(,)?) => {$(
        impl PartialEq<$ty> for Value {
            fn eq(&self, other: &$ty) -> bool {
                #[allow(clippy::redundant_closure_call)]
                { self == &($conv)(other.clone()) }
            }
        }
        impl PartialEq<Value> for $ty {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(self)
    }
}

value_partial_eq! {
    &str => |v: &str| Value::from(v),
    String => Value::from,
    bool => Value::from,
    i32 => Value::from,
    i64 => Value::from,
    u64 => Value::from,
    usize => Value::from,
    f64 => Value::from,
}

// ---------------------------------------------------------------------------
// Fragment bridge
// ---------------------------------------------------------------------------

pub(crate) fn value_to_fragment(value: &Value) -> Fragment {
    match value {
        Value::Null => Fragment::Null,
        Value::Bool(b) => Fragment::Bool(*b),
        Value::Number(n) => match n.0 {
            NumberRepr::I64(v) => Fragment::I64(v),
            NumberRepr::U64(v) => Fragment::U64(v),
            NumberRepr::F64(v) => Fragment::F64(v),
        },
        Value::String(s) => Fragment::Str(s.clone()),
        Value::Array(items) => Fragment::Seq(items.iter().map(value_to_fragment).collect()),
        Value::Object(map) => Fragment::Map(
            map.iter()
                .map(|(k, v)| (k.clone(), value_to_fragment(v)))
                .collect(),
        ),
    }
}

pub(crate) fn fragment_to_value(fragment: Fragment) -> Value {
    match fragment {
        Fragment::Null => Value::Null,
        Fragment::Bool(b) => Value::Bool(b),
        Fragment::I64(v) => Value::Number(Number(NumberRepr::I64(v))),
        Fragment::U64(v) => Value::Number(Number(NumberRepr::U64(v))),
        Fragment::F64(v) => match Number::from_f64(v) {
            Some(n) => Value::Number(n),
            None => Value::Null,
        },
        Fragment::Str(s) => Value::String(s),
        Fragment::Seq(items) => Value::Array(items.into_iter().map(fragment_to_value).collect()),
        Fragment::Map(entries) => Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k, fragment_to_value(v)))
                .collect(),
        ),
    }
}

impl serde::Serialize for Value {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        serializer.serialize_fragment(value_to_fragment(self))
    }
}

impl<'de> serde::Deserialize<'de> for Value {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        Ok(fragment_to_value(deserializer.deserialize_fragment()?))
    }
}

impl serde::Serialize for Number {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        match self.0 {
            NumberRepr::I64(v) => serializer.serialize_i64(v),
            NumberRepr::U64(v) => serializer.serialize_fragment(Fragment::U64(v)),
            NumberRepr::F64(v) => serializer.serialize_f64(v),
        }
    }
}

impl<'de> serde::Deserialize<'de> for Number {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        match deserializer.deserialize_fragment()? {
            Fragment::I64(v) => Ok(Number(NumberRepr::I64(v))),
            Fragment::U64(v) => Ok(Number(NumberRepr::U64(v))),
            Fragment::F64(v) => Ok(Number(NumberRepr::F64(v))),
            other => Err(<D::Error as serde::de::Error>::custom(format!(
                "invalid type: expected a number, found {}",
                other.kind()
            ))),
        }
    }
}

impl serde::Serialize for Map<String, Value> {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        serializer.serialize_fragment(Fragment::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), value_to_fragment(v)))
                .collect(),
        ))
    }
}

impl<'de> serde::Deserialize<'de> for Map<String, Value> {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        match deserializer.deserialize_fragment()? {
            Fragment::Map(entries) => Ok(entries
                .into_iter()
                .map(|(k, v)| (k, fragment_to_value(v)))
                .collect()),
            other => Err(<D::Error as serde::de::Error>::custom(format!(
                "invalid type: expected a map, found {}",
                other.kind()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Serializes a value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let fragment = serde::to_fragment(value).map_err(Error::from)?;
    Ok(print::to_string_fragment(&fragment))
}

/// Serializes a value to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let fragment = serde::to_fragment(value).map_err(Error::from)?;
    Ok(print::to_string_pretty_fragment(&fragment))
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Parses a value from JSON text.
pub fn from_str<T: serde::de::DeserializeOwned>(text: &str) -> Result<T> {
    let value = parse::parse_value(text)?;
    from_value(value)
}

/// Parses a value from JSON bytes.
pub fn from_slice<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| <Error as serde::de::Error>::custom(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    let fragment = serde::to_fragment(value).map_err(Error::from)?;
    Ok(fragment_to_value(fragment))
}

/// Builds a typed value out of a [`Value`] tree.
pub fn from_value<T: serde::de::DeserializeOwned>(value: Value) -> Result<T> {
    serde::from_fragment(value_to_fragment(&value)).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// json! macro (faithful port of the serde_json TT muncher)
// ---------------------------------------------------------------------------

/// Builds a [`Value`] from JSON-like syntax with interpolated expressions.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    //////////////////////////////////////////////////////////////////////////
    // Array munching: @array [built elements] remaining tts
    //////////////////////////////////////////////////////////////////////////
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////////////////////////////////////////////////////////////////////
    // Object munching: @object map [key] (value) remaining / (partial key)
    //////////////////////////////////////////////////////////////////////////
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident () (($key:expr) : $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($key) (: $($rest)*) (: $($rest)*));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    //////////////////////////////////////////////////////////////////////////
    // Leaves
    //////////////////////////////////////////////////////////////////////////
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({"a": 1, "b": [true, null, "x"], "c": {"d": 2.5}});
        assert_eq!(v["a"], 1);
        assert_eq!(v["b"][0], true);
        assert!(v["b"][1].is_null());
        assert_eq!(v["b"][2], "x");
        assert_eq!(v["c"]["d"], 2.5);
        let xs = vec!["p", "q"];
        let v = json!({ "enum": xs });
        assert_eq!(v["enum"][1], "q");
    }

    #[test]
    fn compact_and_pretty_round_trip() {
        let v = json!({"b": 1, "a": [1, 2]});
        // Objects print key-sorted (BTreeMap backend).
        assert_eq!(to_string(&v).unwrap(), r#"{"a":[1,2],"b":1}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n"));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = from_str::<Value>("{").unwrap_err();
        assert!(err.line() >= 1);
        assert!(err.to_string().contains("line"));
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("01").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Value::String("a\"b\\c\nd\te\u{1F600}".to_string());
        let text = to_string(&original).unwrap();
        assert_eq!(from_str::<Value>(&text).unwrap(), original);
        let parsed: Value = from_str(r#""Aé😀""#).unwrap();
        assert_eq!(parsed, Value::String("Aé😀".to_string()));
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<i64> = from_str("[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        let m: std::collections::BTreeMap<String, String> = from_str(r#"{"k":"v"}"#).unwrap();
        assert_eq!(m["k"], "v");
    }

    #[test]
    fn number_accessors() {
        let n = Number::from(3u64);
        assert_eq!(n.as_i64(), Some(3));
        assert!(n.is_i64());
        let f = Number::from_f64(2.5).unwrap();
        assert_eq!(f.as_i64(), None);
        assert_eq!(f.as_f64(), Some(2.5));
        assert!(Number::from_f64(f64::INFINITY).is_none());
    }
}
