//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and the [`RngExt`] extension trait with
//! `random`, `random_range` (half-open and inclusive), and `random_bool`.
//!
//! The generator is SplitMix64 — deterministic for a given seed, good enough
//! statistically for placement annealing and synthetic benchmark generation.
//! The stream differs from upstream `rand`, so seeded outputs are stable
//! within this workspace but not across crate implementations.

use std::ops::{Range, RangeInclusive};

/// Core random source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`RngExt::random`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $ty
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value inside `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        f64::sample(self) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Alias matching upstream's older trait name.
pub use RngExt as Rng;

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0..=4i64);
            assert!((0..=4).contains(&w));
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn unit_ranges_work() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(rng.random_range(5..6usize), 5);
        assert_eq!(rng.random_range(5..=5usize), 5);
    }
}
