//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, `prop_assert*` / `prop_assume!`
//! / [`prop_oneof!`], range and regex-literal strategies, `prop_map` /
//! `prop_flat_map` / `prop_filter` / `prop_filter_map`, `collection::{vec,
//! btree_map}`, `option::of`, `any::<T>()`, and [`Just`].
//!
//! Differences from upstream, deliberate for an offline stub:
//! - **No shrinking.** A failing case reports its inputs-by-seed (test name +
//!   case index) instead of a minimized counterexample.
//! - Each case is seeded deterministically from the test name and case index,
//!   so failures reproduce exactly across runs and thread counts.
//! - Regex strategies support the subset used here: concatenated literal
//!   chars and `[...]` classes, each optionally quantified with `{n}` or
//!   `{m,n}`.

pub mod strategy {
    use crate::test_runner::TestRunner;
    use rand::RngExt;

    /// A generator of values of type `Value`.
    ///
    /// Unlike upstream there is no value tree: `generate` directly produces
    /// one value from the runner's deterministic RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        fn prop_map<U, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, map }
        }

        fn prop_flat_map<S, F>(self, map: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, map }
        }

        fn prop_filter<F>(self, reason: impl Into<String>, accept: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                accept,
            }
        }

        fn prop_filter_map<U, F>(self, reason: impl Into<String>, map: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<U>,
        {
            FilterMap {
                inner: self,
                reason: reason.into(),
                map,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |runner| self.generate(runner)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRunner) -> T>);

    impl<T> BoxedStrategy<T> {
        pub fn from_fn(generate: impl Fn(&mut TestRunner) -> T + 'static) -> Self {
            BoxedStrategy(Box::new(generate))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            (self.0)(runner)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, runner: &mut TestRunner) -> U {
            (self.map)(self.inner.generate(runner))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        map: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, runner: &mut TestRunner) -> T::Value {
            (self.map)(self.inner.generate(runner)).generate(runner)
        }
    }

    /// Retry budget for filtered strategies before giving up on the case.
    const FILTER_RETRIES: usize = 1000;

    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        accept: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, runner: &mut TestRunner) -> S::Value {
            for _ in 0..FILTER_RETRIES {
                let candidate = self.inner.generate(runner);
                if (self.accept)(&candidate) {
                    return candidate;
                }
            }
            panic!(
                "prop_filter exhausted {FILTER_RETRIES} retries: {}",
                self.reason
            );
        }
    }

    pub struct FilterMap<S, F> {
        inner: S,
        reason: String,
        map: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
        type Value = U;
        fn generate(&self, runner: &mut TestRunner) -> U {
            for _ in 0..FILTER_RETRIES {
                if let Some(value) = (self.map)(self.inner.generate(runner)) {
                    return value;
                }
            }
            panic!(
                "prop_filter_map exhausted {FILTER_RETRIES} retries: {}",
                self.reason
            );
        }
    }

    /// Uniform choice between boxed alternatives; built by [`prop_oneof!`].
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            let index = runner.rng().random_range(0..self.options.len());
            self.options[index].generate(runner)
        }
    }

    macro_rules! range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, runner: &mut TestRunner) -> $ty {
                    runner.rng().random_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, runner: &mut TestRunner) -> $ty {
                    runner.rng().random_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, runner: &mut TestRunner) -> f64 {
            runner.rng().random_range(self.clone())
        }
    }

    /// String literals act as regex strategies (subset; see crate docs).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, runner: &mut TestRunner) -> String {
            crate::string::sample(self, runner)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(runner),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Inputs violated an assumption; the case is skipped.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    /// Drives the cases of one property test with deterministic seeding.
    pub struct TestRunner {
        name: &'static str,
        cases: u32,
        rng: StdRng,
        rejects: u32,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            TestRunner {
                name,
                cases: config.cases,
                rng: StdRng::seed_from_u64(0),
                rejects: 0,
            }
        }

        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// Reseeds the RNG for a case so failures reproduce exactly.
        pub fn begin_case(&mut self, case: u32) {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for byte in self.name.bytes() {
                seed ^= u64::from(byte);
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            seed ^= u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            self.rng = StdRng::seed_from_u64(seed);
        }

        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }

        pub fn finish_case(&mut self, case: u32, result: Result<(), TestCaseError>) {
            match result {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {
                    self.rejects += 1;
                    assert!(
                        self.rejects <= self.cases.saturating_mul(4),
                        "{}: too many rejected cases ({})",
                        self.name,
                        self.rejects,
                    );
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "{} failed at case {case} (reproduce: rerun, seeds are \
                         derived from the test name and case index)\n{message}",
                        self.name,
                    );
                }
            }
        }
    }
}

pub mod arbitrary {
    use crate::strategy::BoxedStrategy;
    use rand::RngExt;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary() -> BoxedStrategy<Self>;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
        T::arbitrary()
    }

    impl Arbitrary for bool {
        fn arbitrary() -> BoxedStrategy<bool> {
            BoxedStrategy::from_fn(|runner| runner.rng().random())
        }
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary() -> BoxedStrategy<$ty> {
                    BoxedStrategy::from_fn(|runner| runner.rng().random())
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary() -> BoxedStrategy<f64> {
            BoxedStrategy::from_fn(|runner| runner.rng().random())
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::RngExt;
    use std::collections::BTreeMap;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn sample(self, runner: &mut TestRunner) -> usize {
            runner.rng().random_range(self.min..=self.max)
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max: exact,
            }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(range: ::std::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty collection size range");
            SizeRange {
                min: range.start,
                max: range.end - 1,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *range.start(),
                max: *range.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec`s of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = self.size.sample(runner);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `BTreeMap`s of up to `size` entries (duplicate keys collapse).
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let len = self.size.sample(runner);
            (0..len)
                .map(|_| (self.key.generate(runner), self.value.generate(runner)))
                .collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::RngExt;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Option<S::Value> {
            if runner.rng().random_bool(0.75) {
                Some(self.inner.generate(runner))
            } else {
                None
            }
        }
    }
}

pub mod string {
    //! Sampler for the regex subset used as string strategies.

    use crate::test_runner::TestRunner;
    use rand::RngExt;

    struct Atom {
        /// Inclusive codepoint ranges to choose from.
        choices: Vec<(char, char)>,
        min: usize,
        max: usize,
    }

    /// Generates a string matching `pattern` (concatenated literals and
    /// `[...]` classes with optional `{n}` / `{m,n}` quantifiers).
    pub fn sample(pattern: &str, runner: &mut TestRunner) -> String {
        let atoms = parse(pattern);
        let mut out = String::new();
        for atom in &atoms {
            let count = runner.rng().random_range(atom.min..=atom.max);
            let total: u32 = atom
                .choices
                .iter()
                .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                .sum();
            for _ in 0..count {
                let mut roll = runner.rng().random_range(0..total);
                for (lo, hi) in &atom.choices {
                    let width = *hi as u32 - *lo as u32 + 1;
                    if roll < width {
                        out.push(char::from_u32(*lo as u32 + roll).expect("valid scalar"));
                        break;
                    }
                    roll -= width;
                }
            }
        }
        out
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let choices = match chars[i] {
                '[' => {
                    i += 1;
                    let mut choices = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let hi = chars[i + 2];
                            assert!(lo <= hi, "bad class range in {pattern:?}");
                            choices.push((lo, hi));
                            i += 3;
                        } else {
                            choices.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in {pattern:?}");
                    i += 1; // past ']'
                    choices
                }
                '\\' => {
                    i += 1;
                    assert!(i < chars.len(), "trailing backslash in {pattern:?}");
                    let literal = chars[i];
                    i += 1;
                    vec![(literal, literal)]
                }
                c => {
                    assert!(
                        !matches!(c, '(' | ')' | '|' | '*' | '+' | '?' | '.' | '^' | '$'),
                        "unsupported regex feature {c:?} in {pattern:?}"
                    );
                    i += 1;
                    vec![(c, c)]
                }
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier min"),
                        hi.trim().parse().expect("quantifier max"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            atoms.push(Atom { choices, min, max });
        }
        atoms
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice between strategy arms producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests: each function's arguments are drawn from the
/// strategies after `in`, repeated for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_each {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                for case in 0..runner.cases() {
                    runner.begin_case(case);
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $(
                            let $arg = {
                                let strategy = $strategy;
                                $crate::strategy::Strategy::generate(&strategy, &mut runner)
                            };
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    runner.finish_case(case, outcome);
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_samples_match_shape() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(1), "regex");
        runner.begin_case(0);
        for _ in 0..200 {
            let s = crate::string::sample("[A-Z]{3,8}", &mut runner);
            assert!((3..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_uppercase()));
            let t = crate::string::sample("[a-z][a-z0-9_]{0,8}", &mut runner);
            assert!(t.chars().next().unwrap().is_ascii_lowercase());
            let u = crate::string::sample("[A-Za-z][A-Za-z0-9 _-]{0,20}", &mut runner);
            assert!(!u.is_empty());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_wiring_works(x in 0usize..10, flag in any::<bool>(), s in "[a-z]{1,4}") {
            prop_assume!(x < 10);
            prop_assert!(x < 10);
            prop_assert_eq!(x, x);
            if flag {
                prop_assert_ne!(s.len(), 0);
            }
        }

        #[test]
        fn combinators_work(
            v in crate::collection::vec(0i64..5, 0..6),
            m in crate::collection::btree_map("[a-z]{1,3}", 0u64..9, 0..4),
            o in crate::option::of(1usize..3),
            pair in prop_oneof![Just(0usize), 5usize..7],
        ) {
            prop_assert!(v.len() < 6);
            prop_assert!(m.len() < 4);
            if let Some(x) = o {
                prop_assert!((1..3).contains(&x));
            }
            prop_assert!(pair == 0 || (5..7).contains(&pair));
        }
    }
}
