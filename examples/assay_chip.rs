//! Generate an assay-class benchmark, validate it, and render it to SVG —
//! the workflow of the paper's device-layout figures (experiment E3).
//!
//! Run with:
//! `cargo run -p parchmint-examples --example assay_chip [benchmark_name]`

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "chromatin_immunoprecipitation".to_string());
    let benchmark = parchmint_suite::by_name(&name)
        .ok_or_else(|| format!("unknown benchmark `{name}` — try `parchmint list`"))?;

    let device = benchmark.device();
    println!("{device}");
    println!("class: {}", benchmark.class());
    println!("description: {}", benchmark.description());

    // Compile the interned view once; validation and characterization
    // both read it.
    let compiled = parchmint::CompiledDevice::from_ref(&device);

    // Every suite device must be conformant out of the generator.
    let report = parchmint_verify::validate(&compiled);
    assert!(
        report.is_conformant(),
        "suite device failed validation:\n{report}"
    );
    println!("validation: conformant ({} findings)", report.len());

    // Characterize it (one row of the paper's Table 1 analogue).
    let stats = parchmint_stats::DeviceStats::of(&compiled);
    println!(
        "components: {}  connections: {}  ports: {}  valves: {}",
        stats.components, stats.connections, stats.ports, stats.valves
    );
    println!(
        "graph: diameter {}  cyclomatic {}  planar-bound {}",
        stats.graph.diameter,
        stats.graph.cyclomatic,
        if stats.graph.satisfies_planar_bound {
            "ok"
        } else {
            "violated"
        }
    );

    // Render the schematic to SVG.
    let svg = parchmint_render::render_svg_default(&device);
    let out = std::env::temp_dir().join(format!("{name}.svg"));
    std::fs::write(&out, svg)?;
    println!("schematic written to {}", out.display());
    Ok(())
}
