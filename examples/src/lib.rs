//! Example host crate; runnable examples live alongside this package.
