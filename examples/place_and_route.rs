//! The algorithmic-quality experiment (E4) in miniature: place and route
//! one benchmark with every placer × router combination and compare.
//!
//! Run with:
//! `cargo run --release -p parchmint-examples --example place_and_route [benchmark]`

use parchmint_pnr::{place_and_route, PlacerChoice, PnrReport, RouterChoice};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "planar_synthetic_3".to_string());
    let benchmark =
        parchmint_suite::by_name(&name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;

    println!("{}", PnrReport::header());
    let mut best: Option<(f64, String)> = None;
    for &placer in PlacerChoice::ALL {
        for &router in RouterChoice::ALL {
            let mut device = benchmark.device();
            let report = place_and_route(&mut device, placer, router);
            println!("{}", report.row());

            // Keep the best physical design (completion, then wirelength).
            let score = report.completion();
            if best.as_ref().map(|(s, _)| score > *s).unwrap_or(true) {
                let svg = parchmint_render::render_svg_default(&device);
                best = Some((score, svg));
            }
        }
    }

    if let Some((completion, svg)) = best {
        let out = std::env::temp_dir().join(format!("{name}_routed.svg"));
        std::fs::write(&out, svg)?;
        println!(
            "\nbest layout ({:.1}% routed) written to {}",
            completion * 100.0,
            out.display()
        );
    }
    Ok(())
}
