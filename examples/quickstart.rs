//! Quickstart: build a small device with the public API, serialize it to
//! ParchMint JSON, validate it, and round-trip it.
//!
//! Run with: `cargo run -p parchmint-examples --example quickstart`

use parchmint::geometry::Span;
use parchmint::{Component, Connection, Device, Entity, Layer, LayerType, Port, Target, ValveType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-layer device: an inlet feeding a serpentine mixer feeding an
    // outlet, with a membrane valve pinching the outlet channel.
    let device = Device::builder("quickstart_chip")
        .layer(Layer::new("flow", "flow", LayerType::Flow))
        .layer(Layer::new("control", "control", LayerType::Control))
        .component(
            Component::new(
                "inlet",
                "sample_in",
                Entity::Port,
                ["flow"],
                Span::square(200),
            )
            .with_port(Port::new("p", "flow", 200, 100)),
        )
        .component(
            Component::new(
                "mix",
                "serpentine",
                Entity::Mixer,
                ["flow"],
                Span::new(1800, 1000),
            )
            .with_port(Port::new("in", "flow", 0, 500))
            .with_port(Port::new("out", "flow", 1800, 500)),
        )
        .component(
            Component::new(
                "outlet",
                "collect",
                Entity::Port,
                ["flow"],
                Span::square(200),
            )
            .with_port(Port::new("p", "flow", 0, 100)),
        )
        .component(
            Component::new("v1", "gate", Entity::Valve, ["control"], Span::square(300))
                .with_port(Port::new("actuate", "control", 0, 150)),
        )
        .component(
            Component::new(
                "ctl",
                "gate_ctl",
                Entity::Port,
                ["control"],
                Span::square(200),
            )
            .with_port(Port::new("p", "control", 200, 100)),
        )
        .connection(Connection::new(
            "ch_in",
            "inlet_to_mixer",
            "flow",
            Target::new("inlet", "p"),
            [Target::new("mix", "in")],
        ))
        .connection(Connection::new(
            "ch_out",
            "mixer_to_outlet",
            "flow",
            Target::new("mix", "out"),
            [Target::new("outlet", "p")],
        ))
        .connection(Connection::new(
            "ch_ctl",
            "gate_line",
            "control",
            Target::new("ctl", "p"),
            [Target::new("v1", "actuate")],
        ))
        .valve("v1", "ch_out", ValveType::NormallyClosed)
        .bounds(Span::new(6000, 4000))
        .build()?;

    println!("built: {device}");

    // Serialize to the interchange format.
    let json = device.to_json_pretty()?;
    println!("\n--- ParchMint JSON ({} bytes) ---\n{json}\n", json.len());

    // Compile the interned view; every analysis below reads it.
    let compiled = parchmint::CompiledDevice::from_ref(&device);

    // Validate conformance.
    let report = parchmint_verify::validate(&compiled);
    println!("--- validation ---\n{report}");
    assert!(report.is_conformant());

    // Round-trip losslessly.
    let back = Device::from_json(&json)?;
    assert_eq!(back, device);
    println!("round-trip: lossless OK");

    // Inspect the netlist graph.
    let netlist = parchmint_graph::Netlist::new(&compiled);
    let metrics = parchmint_graph::GraphMetrics::of(netlist.graph());
    println!(
        "graph: {} nodes, {} edges, connected = {}",
        metrics.nodes,
        metrics.edges,
        metrics.is_connected()
    );
    Ok(())
}
