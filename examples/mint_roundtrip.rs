//! Design exchange (experiment E5): convert a benchmark to the MINT
//! netlist language, print it, parse it back, and verify the topology is
//! preserved.
//!
//! Run with:
//! `cargo run -p parchmint-examples --example mint_roundtrip [benchmark]`

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "rotary_pump_mixer".to_string());
    let device = parchmint_suite::by_name(&name)
        .ok_or_else(|| format!("unknown benchmark `{name}`"))?
        .device();

    // ParchMint → MINT.
    let mint = parchmint_mint::device_to_mint(&device);
    let text = parchmint_mint::print(&mint);
    println!(
        "--- {} as MINT ({} statements) ---\n",
        name,
        mint.statement_count()
    );
    println!("{text}");

    // MINT → ParchMint.
    let reparsed = parchmint_mint::parse(&text)?;
    let rebuilt = parchmint_mint::mint_to_device(&reparsed)?;

    assert_eq!(rebuilt.components.len(), device.components.len());
    assert_eq!(rebuilt.connections.len(), device.connections.len());
    assert_eq!(rebuilt.valves, device.valves);
    for original in &device.connections {
        let converted = rebuilt
            .connection(original.id.as_str())
            .expect("connection survives");
        assert_eq!(converted.source, original.source);
        assert_eq!(converted.sinks, original.sinks);
    }
    println!("--- round-trip: topology preserved OK ---");
    println!(
        "{} components, {} connections, {} valve bindings survived both directions",
        rebuilt.components.len(),
        rebuilt.connections.len(),
        rebuilt.valves.len()
    );
    Ok(())
}
