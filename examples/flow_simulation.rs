//! Hydraulic simulation of the molecular gradient generator: solve the
//! pressure field, then the steady-state concentration transport, and
//! print the outlet gradient — the device's functional specification.
//!
//! Run with: `cargo run -p parchmint-examples --example flow_simulation`

use parchmint::{CompiledDevice, ComponentId};
use parchmint_sim::{concentrations, FlowNetwork, Fluid};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = parchmint_suite::by_name("molecular_gradient_generator")
        .unwrap()
        .device();
    println!("{device}\n");

    let network = FlowNetwork::new(&CompiledDevice::from_ref(&device), Fluid::WATER);
    println!(
        "hydraulic network: {} nodes, {} conducting segments",
        network.node_count(),
        network.edge_count()
    );

    // Drive both inlets at 1 kPa against grounded outlets.
    let mut boundary: Vec<(ComponentId, f64)> =
        vec![("in_a".into(), 1000.0), ("in_b".into(), 1000.0)];
    for i in 0..7 {
        boundary.push((format!("out_{i}").into(), 0.0));
    }
    let flow = network.solve(&boundary)?;

    // Source A carries dye at c = 1, source B pure buffer at c = 0.
    let c = concentrations(&flow, &[("in_a".into(), 1.0), ("in_b".into(), 0.0)])?;

    println!("\noutlet   flow (nL/s)   concentration   gradient");
    for i in 0..7 {
        let id = ComponentId::new(format!("out_{i}"));
        let q_nl = flow.net_inflow(&id) * 1e12; // m³/s → nL/s
        let conc = c[&id];
        let bar = "#".repeat((conc * 40.0).round() as usize);
        println!("out_{i}   {q_nl:>11.2}   {conc:>13.3}   {bar}");
    }

    let boundary_ids: Vec<ComponentId> = boundary.iter().map(|(id, _)| id.clone()).collect();
    println!(
        "\nmass-conservation residual: {:.3e} m³/s",
        flow.max_conservation_error(&boundary_ids)
    );
    Ok(())
}
