//! Control synthesis on a two-layer benchmark: plan a fluid movement and
//! print the valve states and pressure-line actuations that realize it.
//!
//! Run with:
//! `cargo run -p parchmint-examples --example control_plan [benchmark from to]`

use parchmint::CompiledDevice;
use parchmint_control::plan_flow;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (name, from, to) = match args.as_slice() {
        [n, f, t] => (n.clone(), f.clone(), t.clone()),
        _ => (
            "chromatin_immunoprecipitation".to_string(),
            "in_reagent_3".to_string(),
            "out_eluate".to_string(),
        ),
    };

    let device = CompiledDevice::compile(
        parchmint_suite::by_name(&name)
            .ok_or_else(|| format!("unknown benchmark `{name}`"))?
            .device(),
    );

    let plan = plan_flow(&device, &from.as_str().into(), &to.as_str().into())?;
    println!("plan: {plan}\n");

    println!("channel path ({} hops):", plan.hops());
    for (i, (component, connection)) in plan
        .components
        .iter()
        .zip(plan.path.iter().map(Some).chain(std::iter::once(None)))
        .enumerate()
    {
        match connection {
            Some(c) => println!("  {i:>2}. {component}  --[{c}]-->"),
            None => println!("  {i:>2}. {component}"),
        }
    }

    println!("\nvalve states:");
    for (valve, state) in &plan.valve_states {
        println!("  {valve:<16} {state}");
    }

    println!("\npressure-line actuations:");
    for actuation in plan.actuations(&device) {
        println!("  {actuation}");
    }

    // A small protocol on the same chip: load, wash, elute — the scheduler
    // emits only the line *transitions* between steps.
    if name == "chromatin_immunoprecipitation" {
        let protocol = parchmint_control::schedule(
            &device,
            &[
                parchmint_control::Step::new("load_sample", "in_reagent_0", "out_waste"),
                parchmint_control::Step::new("wash", "in_reagent_1", "out_waste"),
                parchmint_control::Step::new("elute", "in_reagent_7", "out_eluate"),
            ],
        )?;
        println!("\n--- protocol ---\n{protocol}");
        println!("total line transitions: {}", protocol.transition_count());
    }
    Ok(())
}
