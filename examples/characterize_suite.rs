//! Regenerates the suite-characterization table (experiment E1, the
//! paper's Table 1 analogue) and the entity-class distribution figure.
//!
//! Run with: `cargo run -p parchmint-examples --example characterize_suite`

fn main() {
    let table = parchmint_stats::characterize_suite();

    println!("=== E1: suite characteristics ===\n");
    print!("{}", table.render_text());

    println!("\n=== E1 companion: entity-class distribution across the suite ===\n");
    let totals = table.class_totals();
    let max = totals.iter().map(|(_, n)| *n).max().unwrap_or(1).max(1);
    for (class, count) in totals {
        let bar = "#".repeat(count * 50 / max);
        println!("{:<14} {:>5}  {bar}", class.name(), count);
    }

    let total_components: usize = table.rows().iter().map(|r| r.components).sum();
    let total_connections: usize = table.rows().iter().map(|r| r.connections).sum();
    println!(
        "\nsuite totals: {} benchmarks, {} components, {} connections",
        table.len(),
        total_components,
        total_connections
    );
}
