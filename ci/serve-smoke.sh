#!/usr/bin/env bash
# Boots the `parchmint serve` daemon (line-JSON TCP + HTTP front end +
# persistent spill dir), then proves every tier of the cache subsystem:
#
#   1. a concurrent duplicate pair coalesces onto one compile
#      (single-flight),
#   2. a cold full-suite submission is byte-identical to the committed
#      baseline — the same artifact `suite-run` is gated on,
#   3. a warm resubmission replays 100% from the memory tier (zero new
#      compiles),
#   4. the HTTP front end answers healthz/submit/stats,
#   5. the daemon drains cleanly on shutdown, and
#   6. a *restarted* daemon over the same --cache-dir serves the whole
#      suite from the disk spill tier — byte-identical again, zero
#      recompiles.
#
# Usage:
#
#   ci/serve-smoke.sh
#
# Artifacts: served-report.json / served-report-warm.json /
# served-report-spill.json (stripped suite reports), stats-*.json
# (daemon stats snapshots), serve.log / serve-restart.log (daemon
# stdout/stderr).
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=ci/baseline-report.json
WORKERS="${SERVE_WORKERS:-8}"
CACHE_DIR=$(mktemp -d -t parchmint-smoke-spill.XXXXXX)
trap 'kill "${DAEMON:-}" 2>/dev/null || true; rm -rf "$CACHE_DIR"' EXIT

cargo build --release -p parchmint-cli

start_daemon() { # $1 = log file
  target/release/parchmint serve --tcp 127.0.0.1:0 --http 127.0.0.1:0 \
    --workers "$WORKERS" --cache-dir "$CACHE_DIR" > "$1" 2>&1 &
  DAEMON=$!
  ADDR="" HTTP_ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on //p' "$1" | head -n 1)
    HTTP_ADDR=$(sed -n 's/^http listening on //p' "$1" | head -n 1)
    [[ -n "$ADDR" && -n "$HTTP_ADDR" ]] && break
    sleep 0.1
  done
  if [[ -z "$ADDR" || -z "$HTTP_ADDR" ]]; then
    echo "serve-smoke: daemon never reported its addresses" >&2
    cat "$1" >&2
    exit 1
  fi
  echo "daemon is listening on $ADDR (http on $HTTP_ADDR)"
}

shutdown_daemon() {
  python3 - "$ADDR" <<'EOF'
import json, socket, sys
host, port = sys.argv[1].rsplit(":", 1)
with socket.create_connection((host, int(port))) as conn:
    conn.sendall(b'{"op":"shutdown","id":"smoke"}\n')
    ack = json.loads(conn.makefile().readline())
    assert ack["event"] == "shutting_down", ack
EOF
  wait "$DAEMON"
}

start_daemon serve.log

# --- Phase 1: single-flight. Two identical submissions race down one
# connection; the duplicate must park behind the leader, so exactly one
# compile executes and the coalesced counter moves.
python3 - "$ADDR" <<'EOF'
import json, socket, sys
host, port = sys.argv[1].rsplit(":", 1)
request = {"op": "submit", "proto": "parchmint-serve/1",
           "benchmark": "rotary_pump_mixer"}
with socket.create_connection((host, int(port))) as conn:
    for i in range(2):
        line = dict(request, id=f"dup{i}")
        conn.sendall((json.dumps(line) + "\n").encode())
    reader, done = conn.makefile(), 0
    while done < 2:
        event = json.loads(reader.readline())
        assert event["event"] != "error", event
        done += event["event"] == "done"
    conn.sendall(b'{"op":"stats","id":"s"}\n')
    while True:
        event = json.loads(reader.readline())
        if event["event"] == "stats":
            break
    cache = event["stats"]["cache"]
    counters = event["stats"]["counters"]
    assert cache["coalesced"] >= 1, f"duplicate never coalesced: {cache}"
    assert counters.get("serve.compile.executed", 0) == 1, (
        f"duplicate pair must share one compile: {counters}")
    print(f"duplicate pair coalesced ({cache['coalesced']}) "
          f"onto one compile")
EOF

# --- Phase 2: cold pass — the whole registry, pipelined over one
# connection; the stripped report must match the committed baseline.
target/release/parchmint submit --addr "$ADDR" \
  --strip-timings -o served-report.json --stats-out stats-cold.json
cmp served-report.json "$BASELINE"
echo "served report is byte-identical to $BASELINE"

# --- Phase 3: warm pass — identical submission; every artifact must
# replay from the memory tier and the report must not change by a byte.
target/release/parchmint submit --addr "$ADDR" \
  --strip-timings -o served-report-warm.json --stats-out stats-warm.json
cmp served-report-warm.json "$BASELINE"

python3 - <<'EOF'
import json

with open("served-report.json") as f:
    cells = json.load(f)["counts"]["cells"]
with open("stats-cold.json") as f:
    cold = json.load(f)
with open("stats-warm.json") as f:
    warm = json.load(f)

cache, requests = warm["cache"], warm["requests"]
entries = cache["entries"]
assert entries > 0, cache
hits = cache["memory_hits"] - cold["cache"]["memory_hits"]
assert hits == entries, (
    f"warm pass should hit every compile in memory: {hits} != {entries}")
stage_hits = cache["stage_hits"] - cold["cache"]["stage_hits"]
assert stage_hits == cells, (
    f"warm pass should replay all {cells} cells from cache: {stage_hits}")
compiles = (warm["counters"].get("serve.compile.executed", 0)
            - cold["counters"].get("serve.compile.executed", 0))
assert compiles == 0, f"warm pass must not compile: {compiles}"
assert requests["rejected"] == 0, requests
assert requests["peak_in_flight"] >= 8, (
    f"expected >= 8 concurrent in-flight requests: {requests}")
print(f"warm pass replayed {cells} cells from {entries} cache entries "
      f"with zero compiles; peak in-flight {requests['peak_in_flight']}")
EOF

# --- Phase 4: the HTTP front end, against a live cache.
curl -fsS "http://$HTTP_ADDR/v1/healthz" | grep -q '"status":"ok"'
curl -fsS -X POST "http://$HTTP_ADDR/v1/submit" \
  -d '{"benchmark":"logic_gate_or","stages":["validate"]}' \
  | grep -q '"event":"done"'
curl -fsS "http://$HTTP_ADDR/v1/stats" | grep -q 'parchmint-serve-stats/v2'
echo "http front end answered healthz, submit, and stats"

# --- Phase 5: clean shutdown.
shutdown_daemon
echo "daemon exited cleanly after shutdown"

# --- Phase 6: restart over the same --cache-dir. The fresh daemon has
# an empty memory tier; the whole suite must be served from disk spill,
# byte-identical, without a single recompile.
start_daemon serve-restart.log
target/release/parchmint submit --addr "$ADDR" \
  --strip-timings -o served-report-spill.json --stats-out stats-spill.json
cmp served-report-spill.json "$BASELINE"

python3 - <<'EOF'
import json

with open("served-report.json") as f:
    cells = json.load(f)["counts"]["cells"]
with open("stats-spill.json") as f:
    stats = json.load(f)

cache, counters = stats["cache"], stats["counters"]
assert cache["spill_hits"] == cache["entries"], (
    f"restarted daemon should rehydrate every design from spill: {cache}")
assert cache["stage_hits"] == cells, (
    f"restarted daemon should replay all {cells} cells: {cache}")
assert counters.get("serve.compile.executed", 0) == 0, (
    f"spill-served resubmission must not recompile: {counters}")
assert cache["spill_corrupt"] == 0, cache
print(f"restarted daemon served {cache['entries']} designs "
      f"({cells} cells) from the spill tier with zero recompiles")
EOF

shutdown_daemon
echo "restarted daemon exited cleanly; spill tier verified"
