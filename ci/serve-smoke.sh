#!/usr/bin/env bash
# Boots the `parchmint serve` daemon on an ephemeral TCP port, submits
# the full benchmark suite over the wire, and demands the stripped
# served report be byte-identical to the committed baseline — the same
# artifact `suite-run` is gated on, proving the daemon and the sweep
# share one execution engine. A second submission must then be served
# entirely from the artifact cache, asserted from the daemon's stats
# snapshot. Usage:
#
#   ci/serve-smoke.sh
#
# Artifacts: served-report.json / served-report-warm.json (stripped
# suite reports), stats-cold.json / stats-warm.json (daemon stats
# snapshots), serve.log (daemon stdout/stderr).
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=ci/baseline-report.json
WORKERS="${SERVE_WORKERS:-8}"

cargo build --release -p parchmint-cli

target/release/parchmint serve --tcp 127.0.0.1:0 --workers "$WORKERS" \
  > serve.log 2>&1 &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true' EXIT

# The daemon prints `listening on HOST:PORT` once bound.
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^listening on //p' serve.log | head -n 1)
  [[ -n "$ADDR" ]] && break
  sleep 0.1
done
if [[ -z "$ADDR" ]]; then
  echo "serve-smoke: daemon never reported its address" >&2
  cat serve.log >&2
  exit 1
fi
echo "daemon is listening on $ADDR"

# Cold pass: the whole registry, pipelined over one connection.
target/release/parchmint submit --addr "$ADDR" \
  --strip-timings -o served-report.json --stats-out stats-cold.json
cmp served-report.json "$BASELINE"
echo "served report is byte-identical to $BASELINE"

# Warm pass: identical submission; every artifact must replay from
# cache, and the report must not change by a byte.
target/release/parchmint submit --addr "$ADDR" \
  --strip-timings -o served-report-warm.json --stats-out stats-warm.json \
  --shutdown
cmp served-report-warm.json "$BASELINE"

python3 - <<'EOF'
import json

with open("served-report.json") as f:
    cells = json.load(f)["counts"]["cells"]
with open("stats-warm.json") as f:
    stats = json.load(f)

cache, requests = stats["cache"], stats["requests"]
entries = cache["entries"]
assert entries > 0, cache
assert cache["compile_hits"] == entries, (
    f"warm pass should hit every compile: {cache}")
assert cache["stage_hits"] == cells, (
    f"warm pass should replay all {cells} cells from cache: {cache}")
assert requests["rejected"] == 0, requests
assert requests["peak_in_flight"] >= 8, (
    f"expected >= 8 concurrent in-flight requests: {requests}")
print(f"warm pass replayed {cells} cells from {entries} cache entries; "
      f"peak in-flight {requests['peak_in_flight']}")
EOF

wait "$DAEMON"
echo "daemon exited cleanly after shutdown"
