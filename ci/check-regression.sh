#!/usr/bin/env bash
# Runs the full benchmark suite through the evaluation harness and gates on
# the committed baseline report. Usage:
#
#   ci/check-regression.sh [BENCH...]
#
# With no arguments the whole registry is swept (this is what CI's gate job
# does); naming benchmarks restricts the sweep for a quick local check.
# Exits non-zero if any quality metric regresses beyond the tolerance, if
# any cell errors or panics, or (full sweeps only) if the stripped report
# is not byte-identical to the committed baseline. On a byte mismatch the
# script explains itself: `parchmint report-diff` prints one line per
# changed cell (benchmark, stage, and the keys that changed) before the
# non-zero exit.
#
# Set SUITE_TRACE=trace.json to also capture an observability trace of the
# sweep. The trace is a diagnostic artifact only — it never participates in
# the baseline comparison, and its timing section is machine-dependent.
#
# To refresh the baseline after an intentional quality change:
#
#   cargo run --release -p parchmint-cli -- \
#     suite-run --strip-timings -o ci/baseline-report.json
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=ci/baseline-report.json
TOLERANCE="${SUITE_TOLERANCE:-0.0}"
REPORT="${SUITE_REPORT:-report.json}"
TRACE="${SUITE_TRACE:-}"

TRACE_ARGS=()
if [[ -n "$TRACE" ]]; then
  TRACE_ARGS=(--trace "$TRACE")
fi

cargo build --release -p parchmint-cli
target/release/parchmint suite-run "$@" \
  --threads 0 \
  -o "$REPORT" \
  --baseline "$BASELINE" \
  --tolerance "$TOLERANCE" \
  "${TRACE_ARGS[@]}"

# The metric gate above allows tolerated drift; full sweeps additionally
# demand byte-identity of the stripped report, with report-diff as the
# explanation when bytes disagree.
if [[ $# -eq 0 ]]; then
  STRIPPED="$REPORT.stripped"
  target/release/parchmint suite-run \
    --threads 0 --strip-timings -o "$STRIPPED"
  if ! cmp -s "$STRIPPED" "$BASELINE"; then
    echo "stripped report differs from $BASELINE; per-cell diff:" >&2
    target/release/parchmint report-diff "$BASELINE" "$STRIPPED" || true
    echo "check-regression: stripped report is not byte-identical to $BASELINE" >&2
    exit 1
  fi
  echo "stripped report is byte-identical to $BASELINE"
fi
