#!/usr/bin/env bash
# Runs the full benchmark suite through the evaluation harness and gates on
# the committed baseline report. Usage:
#
#   ci/check-regression.sh [BENCH...]
#
# With no arguments the whole registry is swept (this is what CI's gate job
# does); naming benchmarks restricts the sweep for a quick local check.
# Exits non-zero if any quality metric regresses beyond the tolerance or if
# any cell errors or panics.
#
# Set SUITE_TRACE=trace.json to also capture an observability trace of the
# sweep. The trace is a diagnostic artifact only — it never participates in
# the baseline comparison, and its timing section is machine-dependent.
#
# To refresh the baseline after an intentional quality change:
#
#   cargo run --release -p parchmint-cli -- \
#     suite-run --strip-timings -o ci/baseline-report.json
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=ci/baseline-report.json
TOLERANCE="${SUITE_TOLERANCE:-0.0}"
REPORT="${SUITE_REPORT:-report.json}"
TRACE="${SUITE_TRACE:-}"

TRACE_ARGS=()
if [[ -n "$TRACE" ]]; then
  TRACE_ARGS=(--trace "$TRACE")
fi

cargo build --release -p parchmint-cli
target/release/parchmint suite-run "$@" \
  --threads 0 \
  -o "$REPORT" \
  --baseline "$BASELINE" \
  --tolerance "$TOLERANCE" \
  "${TRACE_ARGS[@]}"
