#!/usr/bin/env bash
# Runs the full benchmark suite through the evaluation harness and gates on
# the committed baseline report. Usage:
#
#   ci/check-regression.sh [BENCH...]
#
# With no arguments the whole registry is swept (this is what CI's gate job
# does); naming benchmarks restricts the sweep for a quick local check.
# Exits non-zero if any quality metric regresses beyond the tolerance or if
# any cell errors or panics.
#
# To refresh the baseline after an intentional quality change:
#
#   cargo run --release -p parchmint-cli -- \
#     suite-run --strip-timings -o ci/baseline-report.json
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=ci/baseline-report.json
TOLERANCE="${SUITE_TOLERANCE:-0.0}"
REPORT="${SUITE_REPORT:-report.json}"

cargo build --release -p parchmint-cli
target/release/parchmint suite-run "$@" \
  --threads 0 \
  -o "$REPORT" \
  --baseline "$BASELINE" \
  --tolerance "$TOLERANCE"
