#!/usr/bin/env bash
# Proves the serve stack survives a hostile wire without changing a
# byte of output:
#
#   1. the full suite is submitted through the deterministic chaos
#      proxy (ci/chaos-plan.json: a mid-frame delay plus truncation on
#      connection 0, an abrupt close on connection 1, a garbage prefix
#      on connection 2) and the client's reconnect/resume machinery
#      must reassemble a report byte-identical to the committed
#      baseline, with exactly one reconnect per faulted connection;
#   2. a slowloris client dripping one byte per second at the HTTP
#      front end is evicted by the read timeout while a concurrent
#      submission on the line protocol completes untouched;
#   3. every injected fault is visible as a deterministic serve.net.*
#      counter, no worker ever wedged (workers_respawned == 0), and
#      the queue drains to zero.
#
# Usage:
#
#   ci/chaos-smoke.sh
#
# Artifacts: chaos-report.json (stripped suite report), stats-chaos.json
# / stats-final.json (daemon stats), serve-chaos.log / chaos-proxy.log
# (daemon and proxy stdout/stderr), chaos-submit.log (client output).
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=ci/baseline-report.json
WORKERS="${SERVE_WORKERS:-8}"
READ_TIMEOUT_MS=2000
trap 'kill "${DAEMON:-}" "${PROXY:-}" 2>/dev/null || true' EXIT

cargo build --release -p parchmint-cli

target/release/parchmint serve --tcp 127.0.0.1:0 --http 127.0.0.1:0 \
  --workers "$WORKERS" --read-timeout-ms "$READ_TIMEOUT_MS" \
  > serve-chaos.log 2>&1 &
DAEMON=$!
ADDR="" HTTP_ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^listening on //p' serve-chaos.log | head -n 1)
  HTTP_ADDR=$(sed -n 's/^http listening on //p' serve-chaos.log | head -n 1)
  [[ -n "$ADDR" && -n "$HTTP_ADDR" ]] && break
  sleep 0.1
done
if [[ -z "$ADDR" || -z "$HTTP_ADDR" ]]; then
  echo "chaos-smoke: daemon never reported its addresses" >&2
  cat serve-chaos.log >&2
  exit 1
fi
echo "daemon is listening on $ADDR (http on $HTTP_ADDR)"

target/release/parchmint chaos-proxy ci/chaos-plan.json \
  --listen 127.0.0.1:0 --upstream "$ADDR" > chaos-proxy.log 2>&1 &
PROXY=$!
PROXY_ADDR=""
for _ in $(seq 1 100); do
  PROXY_ADDR=$(sed -n 's/^chaos proxy listening on \([^ ]*\) .*/\1/p' chaos-proxy.log | head -n 1)
  [[ -n "$PROXY_ADDR" ]] && break
  sleep 0.1
done
if [[ -z "$PROXY_ADDR" ]]; then
  echo "chaos-smoke: proxy never reported its address" >&2
  cat chaos-proxy.log >&2
  exit 1
fi
echo "chaos proxy is listening on $PROXY_ADDR"

# --- Phase 1: the full suite through the faulted wire. The plan tears
# three consecutive connections in three different ways; the client
# must reconnect exactly three times, resume only unacknowledged
# designs, and produce the byte-identical baseline report.
target/release/parchmint submit --addr "$PROXY_ADDR" \
  --strip-timings -o chaos-report.json --stats-out stats-chaos.json \
  --backoff-seed 11 | tee chaos-submit.log
cmp chaos-report.json "$BASELINE"
echo "chaos-fed report is byte-identical to $BASELINE"
grep -q "wire: 3 reconnects" chaos-submit.log || {
  echo "chaos-smoke: expected exactly 3 reconnects" >&2
  exit 1
}

# --- Phase 2: slowloris. One byte of an HTTP request line per second;
# the read timeout must evict the dripper with a 408 while a
# concurrent line-protocol submission completes.
python3 - "$ADDR" "$HTTP_ADDR" "$READ_TIMEOUT_MS" <<'EOF'
import json, socket, sys, threading, time

addr, http_addr, timeout_ms = sys.argv[1], sys.argv[2], int(sys.argv[3])
host, port = addr.rsplit(":", 1)
http_host, http_port = http_addr.rsplit(":", 1)

dripper = socket.create_connection((http_host, int(http_port)))
dripper.settimeout(timeout_ms / 1000 * 5)
stop = threading.Event()

def drip():
    for byte in b"GET /v1/healthz HTTP/1.1":
        if stop.is_set():
            return
        try:
            dripper.sendall(bytes([byte]))
        except OSError:
            return  # evicted mid-drip: exactly the point
        time.sleep(1.0)

feeder = threading.Thread(target=drip)
feeder.start()

# Concurrent legitimate work must be unaffected by the dripper.
with socket.create_connection((host, int(port))) as conn:
    conn.sendall(b'{"op":"submit","id":"live","benchmark":"logic_gate_or",'
                 b'"stages":["validate"]}\n')
    reader = conn.makefile()
    while True:
        event = json.loads(reader.readline())
        assert event["event"] != "error", event
        if event["event"] == "done":
            break
print("concurrent submission completed while the dripper dripped")

response = b""
try:
    while True:
        chunk = dripper.recv(4096)
        if not chunk:
            break
        response += chunk
except TimeoutError:
    pass
stop.set()
feeder.join()
dripper.close()
text = response.decode(errors="replace")
assert "408" in text and "timed out" in text, f"expected a 408 eviction: {text!r}"
print("slowloris dripper evicted with a 408 after the read timeout")
EOF

# --- Phase 3: the observability trail. Every fault kind must have
# moved its deterministic counter, no worker was lost, and nothing is
# stuck in the queue.
python3 - "$ADDR" <<'EOF'
import json, socket, sys

host, port = sys.argv[1].rsplit(":", 1)
with socket.create_connection((host, int(port))) as conn:
    conn.sendall(b'{"op":"stats","id":"final"}\n')
    stats = json.loads(conn.makefile().readline())["stats"]

with open("stats-final.json", "w") as f:
    json.dump(stats, f, indent=2, sort_keys=True)
    f.write("\n")

counters = stats["counters"]
def at_least(name, n):
    assert counters.get(name, 0) >= n, f"{name} < {n}: {counters}"

at_least("serve.net.frames.stalled", 1)   # the mid-frame delay fault
at_least("serve.net.frames.torn", 1)      # truncate / close tore a frame
at_least("serve.net.bad_requests", 1)     # the garbage prefix
at_least("serve.net.read_timeouts", 1)    # the slowloris eviction
at_least("serve.net.conn.accepted", 5)    # 3 faulted + retries + live work
assert stats["workers_respawned"] == 0, stats["workers_respawned"]
assert stats["queue"]["depth"] == 0, stats["queue"]
print("fault counters:",
      {k: v for k, v in sorted(counters.items()) if k.startswith("serve.net.")})
EOF

# --- Shutdown: the daemon must still drain cleanly after all of it.
python3 - "$ADDR" <<'EOF'
import json, socket, sys
host, port = sys.argv[1].rsplit(":", 1)
with socket.create_connection((host, int(port))) as conn:
    conn.sendall(b'{"op":"shutdown","id":"smoke"}\n')
    ack = json.loads(conn.makefile().readline())
    assert ack["event"] == "shutting_down", ack
EOF
wait "$DAEMON"
kill "$PROXY" 2>/dev/null || true
echo "daemon exited cleanly after the chaos run"
