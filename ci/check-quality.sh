#!/usr/bin/env bash
# Gates the full suite sweep on the committed quality baseline. Usage:
#
#   ci/check-quality.sh [REPORT.json]
#
# With no argument the script builds the CLI, runs the full sweep
# (stripped, deterministic), and checks every pnr cell's quality metrics
# — failed nets, wirelength, HPWL, bends, max congestion — against
# ci/baseline-quality.json with the per-metric tolerances recorded in that
# file (>2% wirelength regression or any newly failed net fails the
# gate). Passing a report path skips the sweep and gates that report
# directly, which is how CI's negative control proves the gate can fail.
#
# This gate is complementary to ci/check-regression.sh: the byte-compare
# there proves determinism, this one bounds quality drift even when a
# change is intentional enough to re-baseline the byte-level report.
#
# To refresh the quality baseline after an accepted quality change:
#
#   cargo run --release -p parchmint-cli -- \
#     suite-run --strip-timings -o report.json
#   cargo run --release -p parchmint-cli -- \
#     quality-baseline report.json -o ci/baseline-quality.json
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=ci/baseline-quality.json

cargo build --release -p parchmint-cli

if [[ $# -ge 1 ]]; then
  REPORT="$1"
else
  REPORT="${QUALITY_REPORT:-quality-report.json}"
  target/release/parchmint suite-run --threads 0 --strip-timings -o "$REPORT"
fi

target/release/parchmint quality-check "$BASELINE" "$REPORT"
